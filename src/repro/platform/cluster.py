"""Cluster model: several cores sharing one voltage-frequency domain.

On the Exynos 5422 (ODROID-XU3) all four A15 cores share a single clock and
voltage rail, which is why the paper's many-core formulation controls the
*cluster* operating point rather than per-core points.  The cluster ties
together the cores, the DVFS actuator, the power model, the thermal model
and the power sensor, and exposes the single high-level operation the
simulator needs: *execute this per-core cycle demand at the current
operating point and tell me how long it took and how much energy it cost*.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._compat import SLOTS
from repro.errors import PlatformError
from repro.platform.core import Core, CoreExecutionResult
from repro.platform.dvfs import DVFSActuator, DVFSTransition
from repro.platform.power import PowerModel
from repro.platform.sensors import EnergyMeter, PowerSensor
from repro.platform.thermal import ThermalModel
from repro.platform.vf_table import OperatingPoint, VFTable


class WorkloadTable:
    """Precomputed physics of a frame trace over every operating point.

    Produced by :meth:`Cluster.execute_workload_table`: for each of the
    ``num_frames x num_points`` (frame, operating point) pairs it holds every
    quantity :meth:`Cluster.execute_workload` would derive from that pair —
    critical-path busy time, interval (with optional deadline padding) and
    core+uncore energy — plus the per-point constants (reciprocal periods,
    busy/idle powers) they were derived from.  DVFS transition costs are
    *not* baked in: they depend on the previous frame's decision and are two
    constants the consumer adds per transition.

    Every table entry is built from the same IEEE operations, in the same
    order, as the scalar ``execute_workload`` path, so indexing the table is
    bit-identical to executing the frame — which is what lets the
    table-driven closed-loop engine reproduce the scalar engine's governor
    trajectories exactly (see :mod:`repro.sim.tablepath`).

    Only the energy table is materialised as nested Python lists
    (``energy_rows[frame][point]``) for fast scalar indexing in the
    per-frame loop: busy time is one multiply (``max_cycles x
    seconds_per_cycle``) and the interval one comparison away, the exact
    operations the scalar engine performs, so converting their (frame,
    point) tables to lists would only slow the precompute down.  The NumPy
    arrays of all three quantities are kept for batch post-processing.
    """

    __slots__ = (
        "num_frames",
        "num_cores",
        "num_points",
        "idle_until_deadline",
        "idle_at_min_opp",
        "temperature_c",
        "uncore_power_w",
        "seconds_per_cycle",
        "frequencies_hz",
        "frequencies_mhz",
        "busy_power_w",
        "idle_power_w",
        "cycles",
        "cycles_tuples",
        "max_cycles",
        "deadlines_s",
        "busy_time",
        "interval",
        "energy",
        "energy_rows",
    )

    def __init__(self, **attributes: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, attributes.pop(name))
        if attributes:
            raise PlatformError(f"unknown WorkloadTable attributes: {sorted(attributes)}")

    def matches(self, cluster: "Cluster", idle_until_deadline: bool) -> bool:
        """Cheap soundness check that this table describes ``cluster``'s physics.

        Compares the per-operating-point constants (reciprocal periods,
        busy/idle powers, uncore power, temperature) and the idle/padding
        flags — O(num_points), so a cached table can be validated on every
        reuse.  The frame trace itself is trusted to the cache key.
        """
        table = cluster.vf_table
        if (
            self.num_cores != cluster.num_cores
            or self.num_points != len(table)
            or self.idle_until_deadline != idle_until_deadline
            or self.idle_at_min_opp != cluster.idle_at_min_opp
            or self.temperature_c != cluster.thermal_model.temperature_c
            or self.uncore_power_w != cluster.power_model.parameters.uncore_power_w
        ):
            return False
        if self.seconds_per_cycle != [p.seconds_per_cycle for p in table.points]:
            return False
        busy, idle = cluster.power_model.power_table(table.points, self.temperature_c)
        return self.busy_power_w == busy and self.idle_power_w == idle


def _power_decomposition(
    power_model: PowerModel, points: Sequence[OperatingPoint]
) -> Tuple[List[float], List[float], List[float], List[float]]:
    """Split per-point core power into its temperature-(in)dependent parts.

    ``core_power_w(point, u, T)`` is ``dynamic(point, u) + static(point, T)``
    with ``static = V * (k1 * exp(k2*V) * exp(k3*(T-55)) + k4)``.  Everything
    except the single ``exp(k3*(T-55))`` factor is constant per operating
    point, so precomputing ``dynamic`` (busy and idle) and the leakage scale
    ``k1 * exp(k2*V)`` — with the exact operations, in the exact order, of
    :meth:`PowerModel.static_power_w` — lets a thermally-coupled engine
    reproduce the scalar power path bit for bit at one ``math.exp`` per
    frame instead of two per power lookup.

    Returns ``(dynamic_busy_w, dynamic_idle_w, leak_scale_a, voltages_v)``.
    """
    params = power_model.parameters
    dynamic_busy = [power_model.dynamic_power_w(point, 1.0) for point in points]
    dynamic_idle = [power_model.dynamic_power_w(point, 0.0) for point in points]
    leak_scale = [
        params.leakage_k1_a * math.exp(params.leakage_k2_per_v * point.voltage_v)
        for point in points
    ]
    voltages = [point.voltage_v for point in points]
    return dynamic_busy, dynamic_idle, leak_scale, voltages


class ThermalWorkloadTable:
    """Precomputed physics of a frame trace for a thermally-coupled cluster.

    The isothermal :class:`WorkloadTable` can bake complete energies per
    (frame, operating point) pair because temperature — and with it leakage
    power — is constant over the trace.  With the RC thermal model enabled
    the junction temperature is part of the simulation state, so this table
    precomputes everything *except* the leakage-temperature coupling:

    * the timing tables (critical-path busy time and interval per (frame,
      point) pair), which are temperature-independent;
    * the power decomposition of :func:`_power_decomposition`, which reduces
      per-frame power evaluation to one ``math.exp`` shared by every
      operating point;
    * ``power_slices`` — complete per-point busy/idle power tables keyed by
      *quantised* junction temperature, filled lazily as the trajectory
      visits temperature buckets (only used when the cluster opted into
      ``power_cache_bucket_c`` quantisation, mirroring the scalar power
      cache exactly).  The dict is mutable shared state: a campaign worker
      reusing this table across scenarios keeps the slices warm.

    Every derived quantity uses the same IEEE operations, in the same
    order, as the scalar :meth:`Cluster.execute_workload` path, so engines
    driving this table reproduce scalar thermal trajectories bit for bit.
    """

    __slots__ = (
        "num_frames",
        "num_cores",
        "num_points",
        "idle_until_deadline",
        "idle_at_min_opp",
        "uncore_power_w",
        "seconds_per_cycle",
        "frequencies_hz",
        "frequencies_mhz",
        "cycles",
        "cycles_tuples",
        "max_cycles",
        "deadlines_s",
        "busy_time",
        "interval",
        "dynamic_busy_w",
        "dynamic_idle_w",
        "leak_scale_a",
        "voltages_v",
        "leakage_k3_per_c",
        "leakage_k4_a",
        "bucket_c",
        "ambient_c",
        "resistance_c_per_w",
        "capacitance_j_per_c",
        "throttle_c",
        "power_slices",
    )

    def __init__(self, **attributes: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, attributes.pop(name))
        if attributes:
            raise PlatformError(
                f"unknown ThermalWorkloadTable attributes: {sorted(attributes)}"
            )

    def prefill_power_slices(
        self, cluster: "Cluster", temperatures_c: Sequence[float]
    ) -> int:
        """Warm the quantised power slices for ``temperatures_c`` up front.

        The per-frame loop fills slices lazily as the trajectory visits
        temperature buckets; callers that know the expected junction range
        (e.g. a campaign warming a shared table before fanning out
        scenarios) can bulk-fill it here instead, through the temperature
        axis of :meth:`PowerModel.power_table
        <repro.platform.power.PowerModel.power_table>`.  Temperatures are
        quantised to this table's bucket first; already-filled buckets are
        skipped.  Returns the number of slices added — always 0 for
        exact-mode tables (``bucket_c == 0``), which have no slices.
        """
        bucket = self.bucket_c
        if bucket <= 0.0:
            return 0
        pending: List[float] = []
        for temperature in temperatures_c:
            quantised = round(temperature / bucket) * bucket
            if quantised not in self.power_slices and quantised not in pending:
                pending.append(quantised)
        if not pending:
            return 0
        busy_rows, idle_rows = cluster.power_model.power_table(
            cluster.vf_table.points, pending
        )
        for quantised, busy, idle in zip(pending, busy_rows, idle_rows):
            self.power_slices[quantised] = (busy, idle)
        return len(pending)

    @staticmethod
    def effective_bucket_c(cluster: "Cluster") -> float:
        """The temperature quantisation the scalar power path applies here.

        :meth:`Cluster.core_power_w` quantises the cache key only when the
        cache is enabled; with ``power_cache_size == 0`` it evaluates the
        power model at the exact temperature regardless of the configured
        bucket.  Thermal tables must mirror that decision.
        """
        if cluster.power_cache_size == 0:
            return 0.0
        return cluster.power_cache_bucket_c

    def matches(self, cluster: "Cluster", idle_until_deadline: bool) -> bool:
        """Cheap soundness check that this table describes ``cluster``'s physics.

        O(num_points): compares the timing constants, the power
        decomposition and the thermal RC constants, so a cached table can be
        validated on every reuse.  The frame trace itself is trusted to the
        cache key.
        """
        table = cluster.vf_table
        thermal = cluster.thermal_model.parameters
        if (
            self.num_cores != cluster.num_cores
            or self.num_points != len(table)
            or self.idle_until_deadline != idle_until_deadline
            or self.idle_at_min_opp != cluster.idle_at_min_opp
            or self.uncore_power_w != cluster.power_model.parameters.uncore_power_w
            or self.bucket_c != self.effective_bucket_c(cluster)
            or self.ambient_c != thermal.ambient_c
            or self.resistance_c_per_w != thermal.resistance_c_per_w
            or self.capacitance_j_per_c != thermal.capacitance_j_per_c
            or self.throttle_c != thermal.throttle_c
        ):
            return False
        if self.seconds_per_cycle != [p.seconds_per_cycle for p in table.points]:
            return False
        params = cluster.power_model.parameters
        if (
            self.leakage_k3_per_c != params.leakage_k3_per_c
            or self.leakage_k4_a != params.leakage_k4_a
        ):
            return False
        dynamic_busy, dynamic_idle, leak_scale, voltages = _power_decomposition(
            cluster.power_model, table.points
        )
        return (
            self.dynamic_busy_w == dynamic_busy
            and self.dynamic_idle_w == dynamic_idle
            and self.leak_scale_a == leak_scale
            and self.voltages_v == voltages
        )


@dataclass(frozen=True, **SLOTS)
class ClusterExecutionResult:
    """Outcome of executing one frame's worth of work on a cluster.

    Attributes
    ----------
    duration_s:
        Wall-clock time of the interval (time of the slowest core, plus any
        DVFS transition stall charged to this interval).
    energy_j:
        Total energy consumed over the interval, including idle cores,
        uncore power and DVFS transition energy.
    average_power_w:
        ``energy_j / duration_s`` (0 when the interval is empty).
    operating_point:
        The operating point the work ran at.
    operating_index:
        Index of that operating point in the cluster's table.
    core_results:
        Per-core execution details.
    measured_power_w:
        Power as reported by the (quantised, sampled) on-board sensor.
    temperature_c:
        Junction temperature at the end of the interval.
    max_busy_cycles:
        Largest per-core busy cycle count in the interval (the quantity the
        paper's RTM treats as the observed workload).
    total_busy_cycles:
        Sum of busy cycles over all cores.
    throttle_events:
        Number of thermal-model steps during the interval that ended at or
        above the throttle threshold (0 with the thermal model disabled).
        This is what makes a throttling decision taken mid-epoch visible to
        the per-epoch observation a governor receives.
    """

    duration_s: float
    energy_j: float
    average_power_w: float
    operating_point: OperatingPoint
    operating_index: int
    core_results: Sequence[CoreExecutionResult]
    measured_power_w: float
    temperature_c: float
    max_busy_cycles: float
    total_busy_cycles: float
    throttle_events: int = 0


class Cluster:
    """A set of cores sharing a single DVFS domain.

    Parameters
    ----------
    idle_at_min_opp:
        If True (default) the idle portion of an interval is charged at the
        table's slowest operating point, modelling the cpuidle/WFI behaviour
        of the real platform where an idle core is clock-gated regardless of
        the cluster's DVFS setting.  If False, idle time is charged at the
        active operating point (pessimistic, no idle states).
    record_history:
        Passed to the cluster-built :class:`EnergyMeter` (and to the default
        :class:`PowerSensor` when the caller does not supply one): per-frame
        history recording is opt-in so long campaign runs do not grow memory
        without bound.
    power_cache_size:
        Maximum number of entries of the per-operating-point core-power LRU
        cache.  The leakage model costs two ``math.exp`` calls per lookup,
        evaluated twice per frame in the simulator's inner loop; with the
        thermal model disabled (the paper's setting) the junction
        temperature is constant and every busy/idle power is one of
        ``2 × #OPPs`` values, so the cache turns the hot loop's power-model
        work into two dict reads.  ``0`` disables caching (used by the
        benchmarks to measure the win).
    power_cache_bucket_c:
        Optional temperature quantisation (degrees Celsius) of the cache
        key.  ``0.0`` (default) keys on the exact temperature — numerically
        transparent, and still fully effective when the thermal model is
        off.  A positive bucket makes thermally-enabled runs cache-friendly
        at the cost of evaluating leakage at the bucket centre instead of
        the exact temperature (an approximation the caller opts into).
    """

    def __init__(
        self,
        name: str,
        cores: Sequence[Core],
        vf_table: VFTable,
        power_model: Optional[PowerModel] = None,
        thermal_model: Optional[ThermalModel] = None,
        power_sensor: Optional[PowerSensor] = None,
        dvfs: Optional[DVFSActuator] = None,
        idle_at_min_opp: bool = True,
        record_history: bool = False,
        power_cache_size: int = 1024,
        power_cache_bucket_c: float = 0.0,
    ) -> None:
        if not cores:
            raise PlatformError("a cluster requires at least one core")
        if power_cache_size < 0:
            raise PlatformError("power_cache_size must be non-negative")
        if power_cache_bucket_c < 0:
            raise PlatformError("power_cache_bucket_c must be non-negative")
        self.name = name
        self.cores: List[Core] = list(cores)
        self.vf_table = vf_table
        self.power_model = power_model or PowerModel()
        self.thermal_model = thermal_model or ThermalModel(enabled=False)
        self.power_sensor = power_sensor or PowerSensor(record_history=record_history)
        self.dvfs = dvfs or DVFSActuator(table=vf_table)
        self.idle_at_min_opp = idle_at_min_opp
        self.energy_meter = EnergyMeter(record_history=record_history)
        self.power_cache_bucket_c = power_cache_bucket_c
        self._power_cache_size = power_cache_size
        self._power_cache: "OrderedDict[Tuple[int, bool, float], float]" = OrderedDict()
        self._time_s = 0.0

    # -- introspection ---------------------------------------------------------
    @property
    def num_cores(self) -> int:
        """Number of cores in the cluster."""
        return len(self.cores)

    @property
    def current_index(self) -> int:
        """Index of the active operating point."""
        return self.dvfs.current_index

    @property
    def current_point(self) -> OperatingPoint:
        """The active operating point."""
        return self.dvfs.current_point

    @property
    def time_s(self) -> float:
        """Platform time accumulated by this cluster."""
        return self._time_s

    @property
    def total_energy_j(self) -> float:
        """Total true energy consumed by the cluster so far."""
        return self.energy_meter.energy_j

    @property
    def power_cache_size(self) -> int:
        """Capacity of the per-operating-point core-power LRU cache (0 = off).

        Exposed so table-building engines can mirror the exact caching
        semantics of :meth:`core_power_w` — temperature quantisation only
        applies when the cache is enabled.
        """
        return self._power_cache_size

    # -- power cache -----------------------------------------------------------
    def core_power_w(self, index: int, busy: bool, temperature_c: float) -> float:
        """Single-core power at operating point ``index``, via the LRU cache.

        ``busy`` selects utilisation 1.0 (executing) vs 0.0 (clocked idle).
        Cached values are exact: the key includes the temperature, so a hit
        returns bit-identical power to an uncached evaluation (unless the
        caller opted into ``power_cache_bucket_c`` quantisation).  With the
        thermal model enabled and no bucketing the temperature moves every
        frame and exact keys would never hit, so the cache is bypassed
        entirely rather than churned.  The cache assumes ``power_model`` is
        not mutated after construction; call :meth:`invalidate_power_cache`
        if it is.
        """
        bucket = self.power_cache_bucket_c
        thermal_enabled = self.thermal_model.enabled
        if self._power_cache_size == 0 or (thermal_enabled and bucket == 0.0):
            return self.power_model.core_power_w(
                self.vf_table[index], 1.0 if busy else 0.0, temperature_c
            )
        if bucket > 0.0 and thermal_enabled:
            # Quantise only when the temperature actually moves; with the
            # thermal model off, exact keys already hit every time and
            # bucketing would perturb results for no benefit.
            temperature_c = round(temperature_c / bucket) * bucket
        key = (index, busy, temperature_c)
        cache = self._power_cache
        value = cache.get(key)
        if value is None:
            value = self.power_model.core_power_w(
                self.vf_table[index], 1.0 if busy else 0.0, temperature_c
            )
            cache[key] = value
            if len(cache) > self._power_cache_size:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return value

    def invalidate_power_cache(self) -> None:
        """Drop all cached power values (after mutating ``power_model``)."""
        self._power_cache.clear()

    # -- control ---------------------------------------------------------------
    def set_operating_index(self, index: int) -> DVFSTransition:
        """Request operating point ``index`` (the governor-facing knob)."""
        return self.dvfs.request(index, timestamp_s=self._time_s)

    def set_frequency(self, frequency_hz: float) -> DVFSTransition:
        """Request the slowest operating point at least as fast as ``frequency_hz``."""
        return self.dvfs.request_frequency(frequency_hz, timestamp_s=self._time_s)

    # -- execution ---------------------------------------------------------------
    def execute_workload(
        self,
        cycles_per_core: Sequence[float],
        minimum_interval_s: float = 0.0,
        pending_transition: Optional[DVFSTransition] = None,
    ) -> ClusterExecutionResult:
        """Execute one frame of work at the current operating point.

        Parameters
        ----------
        cycles_per_core:
            Busy-cycle demand for each core.  Shorter sequences are padded
            with zeros; longer sequences are an error.
        minimum_interval_s:
            If the work finishes before this time, the cluster idles (at the
            current operating point) until it has elapsed.  This is how a
            frame that beats its deadline still accounts for a full frame
            period of idle power when the application is rate-limited.
        pending_transition:
            A DVFS transition whose latency/energy should be charged to this
            interval (i.e. the governor changed the operating point at the
            start of the frame).
        """
        demands = list(cycles_per_core)
        if len(demands) > self.num_cores:
            raise PlatformError(
                f"got {len(demands)} per-core demands for a {self.num_cores}-core cluster"
            )
        demands += [0.0] * (self.num_cores - len(demands))
        point = self.current_point
        index = self.current_index

        busy_times = [point.time_for_cycles(c) for c in demands]
        interval_s = max(max(busy_times), minimum_interval_s)
        transition_latency = pending_transition.latency_s if pending_transition else 0.0
        transition_energy = pending_transition.energy_j if pending_transition else 0.0

        core_results = [
            core.execute(cycles, point, interval_s)
            for core, cycles in zip(self.cores, demands)
        ]
        temperature = self.thermal_model.temperature_c
        idle_index = 0 if self.idle_at_min_opp else index

        # Per-core energy: busy time at the active operating point, idle time
        # at the idle point (cpuidle / WFI clock gating).  Uncore power is
        # charged for the whole interval.
        busy_power_w = self.core_power_w(index, True, temperature)
        idle_power_w = self.core_power_w(idle_index, False, temperature)
        core_energy_j = sum(
            busy_power_w * result.busy_time_s + idle_power_w * result.idle_time_s
            for result in core_results
        )
        uncore_energy_j = self.power_model.parameters.uncore_power_w * interval_s

        duration_s = interval_s + transition_latency
        energy_j = core_energy_j + uncore_energy_j + transition_energy
        true_average_power = energy_j / duration_s if duration_s > 0 else 0.0

        # Advance the thermal state using the power actually drawn; the
        # throttle-event delta makes mid-epoch threshold crossings visible.
        throttle_events_before = self.thermal_model.throttle_events
        temperature = self.thermal_model.step(true_average_power, duration_s)
        throttle_events = self.thermal_model.throttle_events - throttle_events_before

        # The on-board sensor sees the average rail power for the interval.
        measured_power_w = self.power_sensor.measure_w(
            true_average_power, self._time_s + duration_s
        )

        self.energy_meter.add_interval(
            (core_energy_j + uncore_energy_j) / interval_s if interval_s > 0 else 0.0,
            interval_s,
        )
        self.energy_meter.add_energy(transition_energy)
        self._time_s += duration_s

        return ClusterExecutionResult(
            duration_s=duration_s,
            energy_j=energy_j,
            average_power_w=true_average_power,
            operating_point=point,
            operating_index=index,
            core_results=core_results,
            measured_power_w=measured_power_w,
            temperature_c=temperature,
            max_busy_cycles=max(demands),
            total_busy_cycles=sum(demands),
            throttle_events=throttle_events,
        )

    def idle(self, duration_s: float) -> ClusterExecutionResult:
        """Let the cluster sit idle for ``duration_s`` at the current point."""
        return self.execute_workload([0.0] * self.num_cores, minimum_interval_s=duration_s)

    def execute_workload_table(
        self,
        cycles_per_core: Sequence[Sequence[float]],
        deadlines_s: Sequence[float],
        idle_until_deadline: bool = True,
    ) -> WorkloadTable:
        """Batch-evaluate :meth:`execute_workload` over every operating point.

        For a trace of ``num_frames`` frames (``cycles_per_core[frame]`` is
        the per-core cycle demand, ``deadlines_s[frame]`` the minimum
        interval when ``idle_until_deadline``), precompute busy time,
        interval and core+uncore energy for every (frame, operating point)
        pair.  Requires NumPy and a disabled thermal model (constant
        junction temperature); transition costs are left to the caller.

        Bit-exactness with the scalar path holds by construction:

        * per-core busy time is ``cycles * seconds_per_cycle`` (the same
          hoisted reciprocal, the same single multiply), and the critical
          path is ``max_cycles * seconds_per_cycle`` — identical to the max
          over per-core products because multiplying by a positive constant
          is monotonic under IEEE rounding;
        * per-frame core energy accumulates the per-core terms
          ``busy_power * busy_time + idle_power * idle_time`` left to right
          across cores, exactly like the scalar engine's ``sum()``;
        * busy/idle powers come from :meth:`PowerModel.power_table`, the
          same evaluations the scalar loop's power cache stores.
        """
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - numpy-less installs
            raise PlatformError("execute_workload_table requires numpy") from exc
        if self.thermal_model.enabled:
            raise PlatformError(
                "execute_workload_table requires a disabled thermal model "
                "(temperature-dependent leakage varies per frame)"
            )
        timing = self._trace_timing(np, cycles_per_core, deadlines_s, idle_until_deadline)
        num_frames, cycles, cycles_tuples, deadlines = timing[:4]
        seconds_per_cycle, max_cycles, busy_time, interval = timing[4:]
        num_cores = self.num_cores
        points = self.vf_table.points
        num_points = len(points)
        temperature_c = self.thermal_model.temperature_c

        busy_list, idle_list = self.power_model.power_table(points, temperature_c)
        busy_power = np.array(busy_list)
        idle_power = np.array(idle_list)
        uncore_power_w = self.power_model.parameters.uncore_power_w

        # Core energy, accumulated core by core in scalar summation order.
        # The scalar path clamps idle time with max(0, interval - busy), but
        # busy <= interval holds for every (frame, point) pair by
        # construction (busy <= busy_max <= interval, monotonic multiply),
        # so the clamp is a numerical no-op and is skipped here.
        if self.idle_at_min_opp:
            idle_row = idle_power[0]
        else:
            idle_row = idle_power[None, :]
        core_energy = None
        for core in range(num_cores):
            core_busy = cycles[:, core, None] * seconds_per_cycle[None, :]
            core_idle = interval - core_busy
            term = busy_power[None, :] * core_busy
            term += idle_row * core_idle
            if core_energy is None:
                core_energy = term
            else:
                core_energy += term
        if core_energy is None:  # zero-core clusters cannot exist, but be safe
            core_energy = np.zeros_like(interval)
        energy = core_energy + uncore_power_w * interval

        return WorkloadTable(
            num_frames=num_frames,
            num_cores=num_cores,
            num_points=num_points,
            idle_until_deadline=idle_until_deadline,
            idle_at_min_opp=self.idle_at_min_opp,
            temperature_c=temperature_c,
            uncore_power_w=uncore_power_w,
            seconds_per_cycle=list(seconds_per_cycle.tolist()),
            frequencies_hz=self.vf_table.frequencies_hz,
            frequencies_mhz=[p.frequency_mhz for p in points],
            busy_power_w=busy_list,
            idle_power_w=idle_list,
            cycles=cycles,
            cycles_tuples=cycles_tuples,
            max_cycles=max_cycles.tolist(),
            deadlines_s=deadlines,
            busy_time=busy_time,
            interval=interval,
            energy=energy,
            energy_rows=energy.tolist(),
        )

    def _trace_timing(
        self,
        np,
        cycles_per_core: Sequence[Sequence[float]],
        deadlines_s: Sequence[float],
        idle_until_deadline: bool,
    ):
        """Temperature-independent trace arrays shared by both table builders.

        Critical-path time per (frame, point) is ``max_cycles x
        seconds_per_cycle`` — identical to the max over per-core products
        because multiplying by a positive constant is monotonic under IEEE
        rounding — and the interval applies the optional deadline padding
        with the scalar engine's ``max``.
        """
        num_frames = len(cycles_per_core)
        if num_frames != len(deadlines_s):
            raise PlatformError("cycles_per_core and deadlines_s must have equal length")
        num_cores = self.num_cores
        cycles_tuples = [tuple(row) for row in cycles_per_core]
        for row in cycles_tuples:
            if len(row) != num_cores:
                raise PlatformError(
                    f"got {len(row)} per-core demands for a {num_cores}-core cluster"
                )
        cycles = np.asarray(cycles_tuples, dtype=np.float64).reshape(num_frames, num_cores)
        deadlines = np.asarray(deadlines_s, dtype=np.float64)
        seconds_per_cycle = np.array([p.seconds_per_cycle for p in self.vf_table.points])
        max_cycles = cycles.max(axis=1) if num_frames else np.zeros(0)
        busy_time = max_cycles[:, None] * seconds_per_cycle[None, :]
        if idle_until_deadline:
            interval = np.maximum(busy_time, deadlines[:, None])
        else:
            interval = busy_time.copy()
        return (
            num_frames,
            cycles,
            cycles_tuples,
            deadlines,
            seconds_per_cycle,
            max_cycles,
            busy_time,
            interval,
        )

    def execute_thermal_workload_table(
        self,
        cycles_per_core: Sequence[Sequence[float]],
        deadlines_s: Sequence[float],
        idle_until_deadline: bool = True,
    ) -> ThermalWorkloadTable:
        """Precompute a trace's physics for a thermally-coupled run.

        The thermal counterpart of :meth:`execute_workload_table`: energies
        cannot be baked per (frame, operating point) because leakage power
        depends on the evolving junction temperature, so this table carries
        the temperature-independent timing tables plus the power
        decomposition that reduces per-frame power evaluation to a single
        ``math.exp`` (see :func:`_power_decomposition`).  Requires NumPy;
        valid whether or not the thermal model is currently enabled (the
        consuming engine mirrors the live model's behaviour either way).
        """
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - numpy-less installs
            raise PlatformError("execute_thermal_workload_table requires numpy") from exc
        timing = self._trace_timing(np, cycles_per_core, deadlines_s, idle_until_deadline)
        num_frames, cycles, cycles_tuples, deadlines = timing[:4]
        seconds_per_cycle, max_cycles, busy_time, interval = timing[4:]
        points = self.vf_table.points
        params = self.power_model.parameters
        thermal = self.thermal_model.parameters
        dynamic_busy, dynamic_idle, leak_scale, voltages = _power_decomposition(
            self.power_model, points
        )
        power_slices: Dict[float, Tuple[List[float], List[float]]] = {}
        return ThermalWorkloadTable(
            num_frames=num_frames,
            num_cores=self.num_cores,
            num_points=len(points),
            idle_until_deadline=idle_until_deadline,
            idle_at_min_opp=self.idle_at_min_opp,
            uncore_power_w=params.uncore_power_w,
            seconds_per_cycle=list(seconds_per_cycle.tolist()),
            frequencies_hz=self.vf_table.frequencies_hz,
            frequencies_mhz=[p.frequency_mhz for p in points],
            cycles=cycles,
            cycles_tuples=cycles_tuples,
            max_cycles=max_cycles.tolist(),
            deadlines_s=deadlines,
            busy_time=busy_time,
            interval=interval,
            dynamic_busy_w=dynamic_busy,
            dynamic_idle_w=dynamic_idle,
            leak_scale_a=leak_scale,
            voltages_v=voltages,
            leakage_k3_per_c=params.leakage_k3_per_c,
            leakage_k4_a=params.leakage_k4_a,
            bucket_c=ThermalWorkloadTable.effective_bucket_c(self),
            ambient_c=thermal.ambient_c,
            resistance_c_per_w=thermal.resistance_c_per_w,
            capacitance_j_per_c=thermal.capacitance_j_per_c,
            throttle_c=thermal.throttle_c,
            power_slices=power_slices,
        )

    def advance_time(self, duration_s: float) -> None:
        """Advance the cluster clock by ``duration_s`` without executing work.

        Used by the vectorised fast path, which accounts energy and PMU
        activity in aggregate and then moves the clock once for the whole
        trace.
        """
        if duration_s < 0:
            raise PlatformError(f"duration must be non-negative, got {duration_s}")
        self._time_s += duration_s

    # -- lifecycle ---------------------------------------------------------------
    def reset(self, operating_index: Optional[int] = None) -> None:
        """Reset all state: PMUs, meters, sensor, thermal and DVFS history.

        ``operating_index`` selects the operating point after the reset;
        ``None`` returns the cluster to its power-on default (the fastest
        point), so back-to-back simulation runs start from identical state.
        """
        for core in self.cores:
            core.pmu.reset()
        self.energy_meter.reset()
        self.power_sensor.reset()
        self.thermal_model.reset()
        if operating_index is None:
            operating_index = len(self.vf_table) - 1
        self.dvfs.reset(operating_index)
        self._time_s = 0.0

    def __repr__(self) -> str:
        return (
            f"Cluster(name={self.name!r}, cores={self.num_cores}, "
            f"opps={len(self.vf_table)})"
        )
