"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch a single base class.  More specific subclasses are used
where a caller may plausibly want to distinguish failure modes (e.g. an
invalid operating-point request vs. a mis-configured governor).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class PlatformError(ReproError):
    """An error in the hardware-platform model (cores, clusters, DVFS)."""


class InvalidOperatingPointError(PlatformError):
    """A frequency/voltage pair was requested that the platform does not support."""


class WorkloadError(ReproError):
    """An error in workload/application construction or trace handling."""


class GovernorError(ReproError):
    """A governor was driven incorrectly (e.g. epoch ended before it started)."""


class SimulationError(ReproError):
    """The simulation engine was driven into an inconsistent state."""


class ScenarioTimeoutError(SimulationError):
    """A scenario exceeded its per-run wall-clock budget (``timeout_s``).

    Raised by the executor's timeout guard so a hung scenario is recorded
    as a ``failed`` outcome instead of wedging its worker forever.
    """


class ServiceError(ReproError):
    """The distributed campaign service was driven into an invalid state
    (unknown operation, incomplete campaign asked for its final result,
    every worker lost while work is still pending, ...)."""


class ParityError(ReproError):
    """A parity-harness operation failed (missing golden, unusable spec, ...).

    Not a parity *divergence* — divergences are data
    (:class:`repro.testing.parity.trace.TraceDivergence`), reported and
    exit-coded by the harness; this error means the harness itself could
    not run as asked."""


class StateSpaceError(ReproError):
    """A value could not be mapped into the discretised RL state space."""
