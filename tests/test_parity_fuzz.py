"""Tests for the property-based scenario fuzzer and its minimizer."""

import json

import pytest

from repro.campaign.spec import ScenarioSpec
from repro.testing.parity import (
    fuzz_seed,
    generate_scenario,
    minimize_scenario,
    run_fuzz,
)
from repro.testing.parity.fuzz import _shrink_candidates


class TestGenerateScenario:
    def test_deterministic_per_seed(self):
        assert generate_scenario(42) == generate_scenario(42)
        assert generate_scenario(42).scenario_id == generate_scenario(42).scenario_id

    def test_distinct_seeds_distinct_scenarios(self):
        ids = {generate_scenario(seed).scenario_id for seed in range(20)}
        assert len(ids) == 20

    def test_scenarios_are_pure_campaign_data(self):
        for seed in range(10):
            spec = generate_scenario(seed)
            encoded = json.dumps(spec.to_dict(), sort_keys=True)
            assert ScenarioSpec.from_dict(json.loads(encoded)) == spec

    def test_userspace_pins_stay_inside_the_table(self):
        for seed in range(200):
            spec = generate_scenario(seed)
            if spec.governor.name != "userspace":
                continue
            pin = dict(spec.governor.params)["index"]
            bound = dict(spec.cluster.params)["opp_count"]
            assert 0 <= pin < bound


class TestFuzzSeed:
    def test_smoke_seeds_are_clean(self):
        for seed in range(5):
            failure = fuzz_seed(seed)
            assert failure is None, failure.failures

    def test_failure_object_reproduces_from_seed_alone(self):
        # Any seed's scenario must be rebuildable from the seed number.
        assert generate_scenario(7) == generate_scenario(7)
        report = run_fuzz([7])
        assert report.seeds == [7]


class TestRunFuzz:
    def test_sweep_reports_seed_range(self):
        report = run_fuzz(range(3))
        assert report.ok
        assert report.to_dict()["seeds_run"] == 3
        assert report.to_dict()["first_seed"] == 0
        assert report.to_dict()["last_seed"] == 2

    def test_progress_callback_fires_per_seed(self):
        seen = []
        run_fuzz(range(3), progress=lambda seed, failure: seen.append(seed))
        assert seen == [0, 1, 2]


class TestMinimizer:
    def test_shrink_candidates_simplify(self):
        spec = generate_scenario(0)
        for candidate in _shrink_candidates(spec):
            assert isinstance(candidate, ScenarioSpec)
            app = dict(candidate.application.params)
            assert app["num_frames"] >= 4

    def test_minimizer_shrinks_under_a_failing_predicate(self):
        spec = generate_scenario(0)
        original_frames = dict(spec.application.params)["num_frames"]

        # Pretend every candidate still fails: the minimizer should walk all
        # the way down to the floor of each shrink dimension.
        minimal = minimize_scenario(spec, still_fails=lambda candidate: True)
        app = dict(minimal.application.params)
        cluster = dict(minimal.cluster.params)
        assert app["num_frames"] == 4 < original_frames
        assert cluster["opp_count"] == 2
        assert cluster["num_cores"] == 1
        assert cluster["enable_thermal"] is False
        assert app["jitter"] == 0.0
        assert app["spike_probability"] == 0.0

    def test_minimizer_keeps_scenario_when_nothing_fails(self):
        spec = generate_scenario(0)
        assert minimize_scenario(spec, still_fails=lambda candidate: False) == spec

    def test_minimizer_respects_a_real_predicate(self):
        # Fail only while the scenario still has more than 20 frames: the
        # minimizer must stop at the largest candidate <= 20 frames' parent,
        # i.e. return a scenario that still fails.
        spec = generate_scenario(1)

        def still_fails(candidate):
            return dict(candidate.application.params)["num_frames"] > 20

        minimal = minimize_scenario(spec, still_fails=still_fails)
        assert dict(minimal.application.params)["num_frames"] > 20

    def test_minimizer_clamps_userspace_pin(self):
        spec = None
        for seed in range(300):
            candidate = generate_scenario(seed)
            if (
                candidate.governor.name == "userspace"
                and dict(candidate.cluster.params)["opp_count"] > 2
            ):
                spec = candidate
                break
        assert spec is not None, "no userspace scenario among 300 seeds"
        minimal = minimize_scenario(spec, still_fails=lambda candidate: True)
        pin = dict(minimal.governor.params)["index"]
        assert 0 <= pin < dict(minimal.cluster.params)["opp_count"]


class TestFuzzCli:
    def test_fuzz_cli_exit_zero_on_clean_seeds(self, capsys):
        from repro.testing.parity.cli import main

        code = main(["fuzz", "--seeds", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 seeds fuzzed, 0 failing" in out

    def test_fuzz_cli_single_seed(self, capsys):
        from repro.testing.parity.cli import main

        assert main(["fuzz", "--seed", "41"]) == 0
        assert "seed 41: ok" in capsys.readouterr().out

    def test_fuzz_cli_writes_artifacts_dir(self, tmp_path):
        from repro.testing.parity.cli import main

        artifacts = tmp_path / "artifacts"
        assert main(["fuzz", "--seeds", "2", "--artifacts", str(artifacts)]) == 0
        report = json.loads((artifacts / "fuzz-report.json").read_text())
        assert report["ok"] is True
        assert report["seeds_run"] == 2


class TestFuzzFactories:
    def test_fuzz_factories_registered_on_import(self):
        from repro.campaign import registry

        names = registry.registered_names()
        assert "fuzz-trace" in names["applications"]
        assert "fuzz-cluster" in names["clusters"]
        assert "fuzz-ondemand" in names["governors"]
        assert "fuzz-conservative" in names["governors"]

    def test_fuzz_workload_deterministic(self):
        from repro.campaign import registry

        factory = registry.application_factory("fuzz-trace")
        first = factory(num_frames=10, seed=3)
        second = factory(num_frames=10, seed=3)
        assert [f.total_cycles for f in first.frames] == [
            f.total_cycles for f in second.frames
        ]

    def test_fuzz_cluster_builds_requested_table(self):
        from repro.campaign import registry

        cluster = registry.cluster_factory("fuzz-cluster")(
            num_cores=2, opp_count=5, f_min_mhz=200.0, f_max_mhz=1000.0
        )
        assert cluster.num_cores == 2
        assert len(cluster.vf_table) == 5
        assert cluster.vf_table.points[0].frequency_hz == pytest.approx(200e6)
        assert cluster.vf_table.points[-1].frequency_hz == pytest.approx(1000e6)
