"""Unit tests for the reward function (eq. 4) and slack tracker (eq. 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.rtm.rewards import RewardParameters, SlackTracker, compute_reward


class TestComputeReward:
    def test_positive_when_meeting_requirement(self):
        assert compute_reward(average_slack=0.08, slack_delta=0.0) > 0.0

    def test_negative_when_missing_budget(self):
        assert compute_reward(average_slack=-0.1, slack_delta=0.0) < 0.0

    def test_peak_near_target_slack(self):
        parameters = RewardParameters()
        at_target = compute_reward(parameters.target_slack, 0.0, parameters)
        far_above = compute_reward(0.6, 0.0, parameters)
        just_below_zero = compute_reward(-0.05, 0.0, parameters)
        assert at_target > far_above
        assert at_target > just_below_zero

    def test_overperformance_monotonically_penalised(self):
        rewards = [compute_reward(slack, 0.0) for slack in (0.1, 0.3, 0.5, 0.8)]
        assert rewards == sorted(rewards, reverse=True)

    def test_miss_penalty_scales_with_deficit(self):
        small = compute_reward(-0.05, 0.0)
        large = compute_reward(-0.30, 0.0)
        assert large < small < 0.0

    def test_slack_delta_term(self):
        improving = compute_reward(0.1, slack_delta=0.05)
        degrading = compute_reward(0.1, slack_delta=-0.05)
        assert improving > degrading

    def test_instantaneous_miss_penalises_even_with_healthy_average(self):
        healthy = compute_reward(0.2, 0.0)
        with_miss = compute_reward(0.2, 0.0, instantaneous_slack=-0.2)
        assert with_miss < healthy

    def test_instantaneous_positive_slack_has_no_extra_effect(self):
        assert compute_reward(0.2, 0.0, instantaneous_slack=0.3) == pytest.approx(
            compute_reward(0.2, 0.0)
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RewardParameters(overperformance_penalty=-1.0)
        with pytest.raises(ConfigurationError):
            RewardParameters(miss_penalty_weight=-1.0)


class TestSlackTracker:
    def test_single_epoch_matches_equation_5(self):
        tracker = SlackTracker(reference_time_s=0.040)
        slack = tracker.update(execution_time_s=0.030, overhead_time_s=0.002)
        # L = (Tref - T - T_OVH) / (1 * Tref)
        assert slack == pytest.approx((0.040 - 0.030 - 0.002) / 0.040)

    def test_cumulative_average_over_epochs(self):
        tracker = SlackTracker(reference_time_s=0.040, window=None)
        tracker.update(0.030)  # slack 0.25
        average = tracker.update(0.050)  # slack -0.25
        assert average == pytest.approx(0.0)
        assert tracker.epochs == 2

    def test_windowed_average_forgets_old_epochs(self):
        tracker = SlackTracker(reference_time_s=0.040, window=2)
        tracker.update(0.000)  # slack 1.0
        tracker.update(0.040)  # slack 0.0
        average = tracker.update(0.040)  # slack 0.0; window covers the last two epochs
        assert average == pytest.approx(0.0)

    def test_slack_delta(self):
        tracker = SlackTracker(reference_time_s=0.040, window=None)
        tracker.update(0.030)
        tracker.update(0.050)
        assert tracker.slack_delta == pytest.approx(tracker.history[-1] - tracker.history[-2])

    def test_last_instantaneous_slack(self):
        tracker = SlackTracker(reference_time_s=0.040)
        tracker.update(0.020)
        tracker.update(0.060)
        assert tracker.last_instantaneous_slack == pytest.approx(-0.5)

    def test_history_records_every_epoch(self):
        tracker = SlackTracker(reference_time_s=0.040)
        for execution in (0.01, 0.02, 0.03):
            tracker.update(execution)
        assert len(tracker.history) == 3

    def test_overhead_reduces_slack(self):
        with_overhead = SlackTracker(0.040)
        without_overhead = SlackTracker(0.040)
        assert with_overhead.update(0.030, overhead_time_s=0.005) < without_overhead.update(0.030)

    def test_reset_and_retarget(self):
        tracker = SlackTracker(reference_time_s=0.040)
        tracker.update(0.030)
        tracker.reset(reference_time_s=0.020)
        assert tracker.epochs == 0
        assert tracker.average_slack == 0.0
        assert tracker.reference_time_s == pytest.approx(0.020)

    def test_invalid_construction_and_updates(self):
        with pytest.raises(ConfigurationError):
            SlackTracker(reference_time_s=0.0)
        with pytest.raises(ConfigurationError):
            SlackTracker(reference_time_s=0.04, window=0)
        tracker = SlackTracker(0.04)
        with pytest.raises(ValueError):
            tracker.update(-0.01)
