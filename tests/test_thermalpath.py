"""Equivalence, throttling and caching tests for the thermally-coupled engine.

The contract under test: for *every* governor — closed-loop and
static-schedule alike — the thermally-coupled table engine in
:mod:`repro.sim.thermalpath` must reproduce the scalar engine frame by
frame on a thermally-enabled cluster: every float (temperatures included)
within 1e-9 relative tolerance, identical operating-point trajectories,
identical deadline-miss sets, identical per-epoch throttle events,
identical exploration counts and final Q-tables.  (The implementation is
bit-exact by construction; the tolerance here states the guaranteed
contract, mirroring ``tests/test_tablepath.py``.)
"""

from __future__ import annotations

import pytest

from repro.governors.conservative import ConservativeGovernor
from repro.governors.multicore_dvfs import MultiCoreDVFSGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.shen_rl import ShenRLGovernor
from repro.governors.userspace import UserspaceGovernor
from repro.platform.cluster import ThermalWorkloadTable
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.platform.thermal import ThermalModel, ThermalParameters
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.rtm.rl_governor import RLGovernor
from repro.sim import thermalpath
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workload.fft import fft_application
from repro.workload.video import mpeg4_application

numpy = pytest.importorskip("numpy")

#: Closed-loop governor factories (observation-driven decisions).
CLOSED_LOOP_GOVERNORS = {
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "rl": RLGovernor,
    "rl-multicore": MultiCoreRLGovernor,
    "shen-rl-upd": ShenRLGovernor,
    "multicore-dvfs": MultiCoreDVFSGovernor,
}

#: Static-schedule governors: on a thermally-enabled cluster the vectorised
#: fast path is ineligible, so these too negotiate to the thermal engine.
STATIC_GOVERNORS = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "userspace": lambda: UserspaceGovernor(index=9),
    "oracle": OracleGovernor,
}

ALL_GOVERNORS = {**CLOSED_LOOP_GOVERNORS, **STATIC_GOVERNORS}

FLOAT_FIELDS = (
    "busy_time_s",
    "overhead_time_s",
    "frame_time_s",
    "interval_s",
    "deadline_s",
    "energy_j",
    "average_power_w",
    "measured_power_w",
    "temperature_c",
)


def _thermal_cluster(**kwargs):
    return build_a15_cluster(enable_thermal=True, **kwargs)


def _run_both(factory, application, cluster_kwargs=None, **config_kwargs):
    """Run ``application`` under ``factory()`` on the scalar and thermal engines."""
    cluster_kwargs = cluster_kwargs or {}
    scalar_governor = factory()
    scalar_engine = SimulationEngine(
        _thermal_cluster(**cluster_kwargs),
        SimulationConfig(**config_kwargs),
        engine="scalar",
    )
    scalar = scalar_engine.run(application, scalar_governor)
    assert scalar.engine_used == "scalar"

    thermal_governor = factory()
    thermal_engine = SimulationEngine(
        _thermal_cluster(**cluster_kwargs), SimulationConfig(**config_kwargs)
    )
    thermal = thermal_engine.run(application, thermal_governor)
    assert thermal.engine_used == "thermalpath"
    assert thermal_engine.engine_used == "thermalpath"
    # The deprecated booleans stay False: this is neither of the isothermal
    # fast paths.
    assert not thermal_engine.last_used_fast_path
    assert not thermal_engine.last_used_table_path
    return scalar, thermal, scalar_governor, thermal_governor, thermal_engine


def _assert_frame_by_frame_equivalent(scalar, thermal):
    assert thermal.num_frames == scalar.num_frames
    assert thermal.governor_name == scalar.governor_name
    assert thermal.application_name == scalar.application_name
    for thermal_record, scalar_record in zip(thermal.records, scalar.records):
        assert thermal_record.index == scalar_record.index
        # The decision trajectory must be *identical*, not merely close.
        assert thermal_record.operating_index == scalar_record.operating_index
        assert thermal_record.frequency_mhz == scalar_record.frequency_mhz
        assert thermal_record.cycles_per_core == scalar_record.cycles_per_core
        assert thermal_record.explored == scalar_record.explored
        for field in FLOAT_FIELDS:
            assert getattr(thermal_record, field) == pytest.approx(
                getattr(scalar_record, field), rel=1e-9, abs=1e-15
            ), field
    scalar_misses = [r.index for r in scalar.records if not r.met_deadline]
    thermal_misses = [r.index for r in thermal.records if not r.met_deadline]
    assert thermal_misses == scalar_misses
    assert thermal.total_energy_j == pytest.approx(scalar.total_energy_j, rel=1e-9)
    assert thermal.total_time_s == pytest.approx(scalar.total_time_s, rel=1e-9)


class TestThermalPathEquivalence:
    @pytest.mark.parametrize("name", sorted(ALL_GOVERNORS))
    def test_matches_scalar_engine_frame_by_frame(self, name):
        application = mpeg4_application(num_frames=400, seed=5)
        scalar, thermal, _, _, _ = _run_both(ALL_GOVERNORS[name], application)
        _assert_frame_by_frame_equivalent(scalar, thermal)

    @pytest.mark.parametrize("name", sorted(CLOSED_LOOP_GOVERNORS))
    def test_matches_on_fft_without_deadline_padding(self, name):
        application = fft_application(num_frames=150, seed=2)
        scalar, thermal, _, _, _ = _run_both(
            CLOSED_LOOP_GOVERNORS[name], application, idle_until_deadline=False
        )
        _assert_frame_by_frame_equivalent(scalar, thermal)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_property_style_seed_sweep(self, seed):
        """Temperatures, energy and miss sets agree across workload seeds."""
        application = mpeg4_application(num_frames=200, seed=seed)
        scalar, thermal, _, _, _ = _run_both(OndemandGovernor, application)
        _assert_frame_by_frame_equivalent(scalar, thermal)
        # Thermal coupling is actually exercised: the junction moved.
        temperatures = {r.temperature_c for r in thermal.records}
        assert len(temperatures) > 1

    @pytest.mark.parametrize("name", ["rl", "rl-multicore", "shen-rl-upd"])
    def test_learning_state_identical(self, name):
        """Exploration counts, convergence epochs and final Q-tables match."""
        application = mpeg4_application(num_frames=600, seed=7)
        scalar, thermal, scalar_governor, thermal_governor, _ = _run_both(
            CLOSED_LOOP_GOVERNORS[name], application
        )
        assert thermal.exploration_count == scalar.exploration_count
        assert thermal.converged_epoch == scalar.converged_epoch
        assert scalar.exploration_count > 0  # the run actually explored
        scalar_qtable = scalar_governor.agent.qtable
        thermal_qtable = thermal_governor.agent.qtable
        for state in range(scalar_qtable.num_states):
            assert thermal_qtable.row(state) == scalar_qtable.row(state)
        assert scalar_governor.reward_history == thermal_governor.reward_history

    def test_matches_with_sensor_noise(self):
        """The thermal path drives the real sensor, so seeded noise matches too."""
        application = mpeg4_application(num_frames=120, seed=3)
        scalar, thermal, _, _, _ = _run_both(
            OndemandGovernor,
            application,
            cluster_kwargs={"sensor_noise_w": 0.05, "seed": 42},
        )
        _assert_frame_by_frame_equivalent(scalar, thermal)

    def test_matches_with_bucketed_power_cache(self):
        """Clusters that quantise cache temperatures are mirrored exactly."""
        application = mpeg4_application(num_frames=200, seed=5)
        scalar, thermal, _, _, _ = _run_both(
            OndemandGovernor,
            application,
            cluster_kwargs={"power_cache_bucket_c": 2.0},
        )
        _assert_frame_by_frame_equivalent(scalar, thermal)

    def test_matches_with_bucket_but_cache_disabled(self):
        """power_cache_size=0 disables quantisation; the engine must follow."""
        application = mpeg4_application(num_frames=120, seed=5)
        scalar, thermal, _, _, _ = _run_both(
            OndemandGovernor,
            application,
            cluster_kwargs={"power_cache_bucket_c": 2.0, "power_cache_size": 0},
        )
        _assert_frame_by_frame_equivalent(scalar, thermal)

    def test_cluster_aggregate_state_synchronised(self):
        application = mpeg4_application(num_frames=300, seed=5)
        scalar, thermal, _, _, engine = _run_both(RLGovernor, application)
        cluster = engine.cluster
        assert cluster.total_energy_j == pytest.approx(thermal.total_energy_j, rel=1e-6)
        assert cluster.time_s == pytest.approx(thermal.total_time_s, rel=1e-9)
        assert cluster.current_index == thermal.records[-1].operating_index
        total_cycles = sum(r.total_cycles for r in thermal.records)
        pmu_cycles = sum(core.pmu.busy_cycles for core in cluster.cores)
        assert pmu_cycles == pytest.approx(total_cycles, rel=1e-9)
        # The live thermal model holds the trajectory's final temperature.
        assert cluster.thermal_model.temperature_c == thermal.records[-1].temperature_c

    def test_back_to_back_runs_without_reset_match_scalar(self):
        """Persistent sensor/DVFS/thermal state carries across runs identically."""
        application = mpeg4_application(num_frames=100, seed=3)

        def run(engine_name):
            engine = SimulationEngine(
                _thermal_cluster(), SimulationConfig(), engine=engine_name
            )
            engine.run(application, OndemandGovernor())
            second = engine.run(application, OndemandGovernor(), reset_cluster=False)
            return second, engine

        scalar, scalar_engine = run("scalar")
        thermal, thermal_engine = run("auto")
        assert thermal.engine_used == "thermalpath"
        _assert_frame_by_frame_equivalent(scalar, thermal)
        assert thermal_engine.cluster.time_s == scalar_engine.cluster.time_s
        assert (
            thermal_engine.cluster.thermal_model.temperature_c
            == scalar_engine.cluster.thermal_model.temperature_c
        )

    def test_dvfs_transition_history_matches_scalar(self):
        application = mpeg4_application(num_frames=300, seed=5)

        def run(engine_name):
            engine = SimulationEngine(
                _thermal_cluster(), SimulationConfig(), engine=engine_name
            )
            engine.run(application, OndemandGovernor())
            return engine.cluster.dvfs

        scalar_dvfs = run("scalar")
        thermal_dvfs = run("auto")
        assert thermal_dvfs.transition_count == scalar_dvfs.transition_count
        assert thermal_dvfs.transition_count > 0
        for thermal_t, scalar_t in zip(thermal_dvfs.transitions, scalar_dvfs.transitions):
            assert thermal_t.from_index == scalar_t.from_index
            assert thermal_t.to_index == scalar_t.to_index
            assert thermal_t.timestamp_s == pytest.approx(
                scalar_t.timestamp_s, rel=1e-9, abs=1e-12
            )

    def test_thermal_disabled_cluster_explicit_request_matches_scalar(self):
        """The engine also reproduces isothermal runs when pinned explicitly."""
        application = mpeg4_application(num_frames=100, seed=4)
        scalar = SimulationEngine(
            build_a15_cluster(), SimulationConfig(), engine="scalar"
        ).run(application, OndemandGovernor())
        thermal = SimulationEngine(
            build_a15_cluster(), SimulationConfig(), engine="thermalpath"
        ).run(application, OndemandGovernor())
        assert thermal.engine_used == "thermalpath"
        _assert_frame_by_frame_equivalent(scalar, thermal)
        # Temperature never moves on a disabled model.
        assert {r.temperature_c for r in thermal.records} == {
            scalar.records[0].temperature_c
        }


class _ThrottleSpy(OndemandGovernor):
    """Records the per-epoch throttle_events each observation reports."""

    def __init__(self):
        super().__init__()
        self.observed = []

    def decide(self, previous, hint=None):
        if previous is not None:
            self.observed.append(previous.throttle_events)
        return super().decide(previous, hint)


class TestThrottleEvents:
    def _hot_cluster(self, throttle_c):
        cluster = _thermal_cluster()
        cluster.thermal_model = ThermalModel(
            parameters=ThermalParameters(
                ambient_c=30.0,
                resistance_c_per_w=7.0,
                capacitance_j_per_c=4.0,
                initial_c=50.0,
                throttle_c=throttle_c,
            ),
            enabled=True,
        )
        return cluster

    def _mixed_threshold(self, application):
        """A throttle threshold strictly inside the trajectory's range."""
        result = SimulationEngine(
            self._hot_cluster(1000.0), SimulationConfig(), engine="scalar"
        ).run(application, OndemandGovernor())
        temperatures = [r.temperature_c for r in result.records]
        return (min(temperatures) + max(temperatures)) / 2.0

    def test_mid_epoch_throttling_is_visible_per_epoch(self):
        application = mpeg4_application(num_frames=300, seed=5)
        threshold = self._mixed_threshold(application)

        def run(engine_name):
            cluster = self._hot_cluster(threshold)
            governor = _ThrottleSpy()
            engine = SimulationEngine(cluster, SimulationConfig(), engine=engine_name)
            result = engine.run(application, governor)
            return governor.observed, cluster.thermal_model.throttle_events, result

        scalar_observed, scalar_total, scalar_result = run("scalar")
        thermal_observed, thermal_total, thermal_result = run("auto")
        assert thermal_result.engine_used == "thermalpath"
        assert scalar_observed == thermal_observed
        assert scalar_total == thermal_total
        # The chosen threshold produces a *mixed* pattern: some epochs
        # throttle, some do not — the edge case that used to be invisible.
        assert 0 < sum(scalar_observed) < len(scalar_observed)
        # The observation matches the recorded temperature trajectory: an
        # epoch reports an event exactly when it ended at/above threshold.
        for observed, record in zip(scalar_observed, scalar_result.records):
            assert observed == (1 if record.temperature_c >= threshold else 0)

    def test_disabled_thermal_model_reports_zero_events(self):
        application = mpeg4_application(num_frames=50, seed=1)
        governor = _ThrottleSpy()
        SimulationEngine(build_a15_cluster(), SimulationConfig()).run(
            application, governor
        )
        assert governor.observed
        assert set(governor.observed) == {0}

    def test_thermal_model_counts_and_resets(self):
        model = ThermalModel(
            parameters=ThermalParameters(initial_c=50.0, throttle_c=40.0),
            enabled=True,
        )
        assert model.throttle_events == 0
        model.step(5.0, 1.0)  # steady 65 C > threshold
        assert model.throttle_events == 1
        model.absorb_state(42.0, 3)
        assert model.temperature_c == 42.0
        assert model.throttle_events == 4
        model.reset()
        assert model.throttle_events == 0
        with pytest.raises(ValueError):
            model.absorb_state(42.0, -1)


class TestThermalWorkloadTable:
    def _tables(self, cluster, application, config=None):
        return thermalpath.precompute_tables(
            cluster, application, config or SimulationConfig()
        )

    def test_matches_validates_cluster_physics(self):
        application = mpeg4_application(num_frames=20, seed=1)
        tables = self._tables(_thermal_cluster(), application)
        assert isinstance(tables, ThermalWorkloadTable)
        assert tables.matches(_thermal_cluster(), idle_until_deadline=True)
        assert not tables.matches(_thermal_cluster(), idle_until_deadline=False)
        other = _thermal_cluster()
        other.idle_at_min_opp = False
        assert not tables.matches(other, idle_until_deadline=True)
        assert not tables.matches(
            _thermal_cluster(num_cores=2), idle_until_deadline=True
        )
        # The quantisation mode is part of the physics contract.
        assert not tables.matches(
            _thermal_cluster(power_cache_bucket_c=2.0), idle_until_deadline=True
        )

    def test_mismatched_tables_are_rebuilt_not_trusted(self):
        """A wrong-shaped cached table degrades to a rebuild, never bad data."""
        application = mpeg4_application(num_frames=40, seed=2)
        stale = self._tables(_thermal_cluster(), mpeg4_application(num_frames=20, seed=2))

        engine = SimulationEngine(
            _thermal_cluster(), table_provider=lambda c, a, cfg: stale
        )
        thermal_result = engine.run(application, OndemandGovernor())
        assert thermal_result.engine_used == "thermalpath"

        scalar = SimulationEngine(
            _thermal_cluster(), SimulationConfig(), engine="scalar"
        ).run(application, OndemandGovernor())
        _assert_frame_by_frame_equivalent(scalar, thermal_result)

    def test_foreign_table_kind_rebuilds_instead_of_crashing(self):
        """Each table engine rejects the other's table type and rebuilds."""
        application = mpeg4_application(num_frames=30, seed=2)
        config = SimulationConfig()
        # Thermal tables handed to the isothermal engine: auto negotiation
        # on a thermal-disabled cluster picks tablepath, which must rebuild.
        thermal_tables = self._tables(build_a15_cluster(), application, config)
        iso_result = SimulationEngine(
            build_a15_cluster(), config, table_provider=lambda c, a, cfg: thermal_tables
        ).run(application, OndemandGovernor())
        assert iso_result.engine_used == "tablepath"
        # Isothermal tables handed to the thermal engine: same, mirrored.
        from repro.sim import tablepath

        iso_tables = tablepath.precompute_tables(build_a15_cluster(), application, config)
        thermal_result = SimulationEngine(
            _thermal_cluster(), config, table_provider=lambda c, a, cfg: iso_tables
        ).run(application, OndemandGovernor())
        assert thermal_result.engine_used == "thermalpath"
        scalar = SimulationEngine(
            _thermal_cluster(), config, engine="scalar"
        ).run(application, OndemandGovernor())
        _assert_frame_by_frame_equivalent(scalar, thermal_result)

    def test_power_table_temperature_axis(self):
        """power_table grows a temperature axis for sequences of temperatures."""
        cluster = _thermal_cluster()
        points = cluster.vf_table.points
        temperatures = [45.0, 55.0, 65.0]
        busy_rows, idle_rows = cluster.power_model.power_table(points, temperatures)
        assert len(busy_rows) == len(idle_rows) == len(temperatures)
        for row_index, temperature in enumerate(temperatures):
            busy, idle = cluster.power_model.power_table(points, temperature)
            assert busy_rows[row_index] == busy
            assert idle_rows[row_index] == idle

    def test_power_slices_fill_lazily_and_are_shared(self):
        """Bucketed runs populate the table's slices; reuse keeps them warm."""
        application = mpeg4_application(num_frames=150, seed=5)
        config = SimulationConfig()
        cluster = _thermal_cluster(power_cache_bucket_c=2.0)
        tables = self._tables(cluster, application, config)
        assert tables.power_slices == {}

        def run(cluster, governor):
            engine = SimulationEngine(
                cluster, config, table_provider=lambda c, a, cfg: tables
            )
            result = engine.run(application, governor)
            assert result.engine_used == "thermalpath"

        run(cluster, OndemandGovernor())
        slices_after_first = dict(tables.power_slices)
        assert slices_after_first  # visited buckets were filled
        # A second governor over the same tables reuses the filled slices.
        run(_thermal_cluster(power_cache_bucket_c=2.0), ConservativeGovernor())
        for key, value in slices_after_first.items():
            assert tables.power_slices[key] is value


class TestPrefillPowerSlices:
    def test_prefilled_slices_match_lazily_filled_ones(self):
        application = mpeg4_application(num_frames=150, seed=5)
        config = SimulationConfig()
        cluster = _thermal_cluster(power_cache_bucket_c=2.0)
        lazy_tables = thermalpath.precompute_tables(cluster, application, config)
        SimulationEngine(
            cluster, config, table_provider=lambda c, a, cfg: lazy_tables
        ).run(application, OndemandGovernor())
        visited = sorted(lazy_tables.power_slices)
        assert visited

        warm_cluster = _thermal_cluster(power_cache_bucket_c=2.0)
        warm_tables = thermalpath.precompute_tables(warm_cluster, application, config)
        added = warm_tables.prefill_power_slices(warm_cluster, visited)
        assert added == len(visited)
        for key in visited:
            assert warm_tables.power_slices[key] == lazy_tables.power_slices[key]
        # Already-filled buckets are skipped; quantisation collapses inputs.
        assert warm_tables.prefill_power_slices(warm_cluster, visited) == 0
        # The prefilled slices are the ones the run then uses (identity).
        before = {key: value for key, value in warm_tables.power_slices.items()}
        SimulationEngine(
            warm_cluster, config, table_provider=lambda c, a, cfg: warm_tables
        ).run(application, OndemandGovernor())
        for key, value in before.items():
            assert warm_tables.power_slices[key] is value

    def test_exact_mode_tables_have_no_slices(self):
        application = mpeg4_application(num_frames=20, seed=1)
        cluster = _thermal_cluster()  # bucket_c == 0: exact leakage
        tables = thermalpath.precompute_tables(
            cluster, application, SimulationConfig()
        )
        assert tables.prefill_power_slices(cluster, [45.0, 55.0]) == 0
        assert tables.power_slices == {}


class TestCampaignThermalTableCache:
    def test_thermal_scenarios_share_tables_and_match_scalar(self):
        from repro.campaign import executor as campaign_executor
        from repro.campaign import registry as campaign_registry
        from repro.campaign.spec import CampaignSpec, FactorySpec

        campaign_registry.register_cluster("a15-thermal-test", _thermal_cluster)
        campaign_executor._TABLE_CACHE.clear()
        try:
            campaign = CampaignSpec.from_grid(
                name="thermal-cache-test",
                applications=[FactorySpec.of("mpeg4", num_frames=40)],
                governors=[FactorySpec.of("ondemand"), FactorySpec.of("conservative")],
                cluster=FactorySpec.of("a15-thermal-test"),
                seeds=[11],
            )
            store = campaign_executor.run_campaign(campaign)
            assert len(campaign_executor._TABLE_CACHE) == 1  # one shared entry
            (cached_tables,) = campaign_executor._TABLE_CACHE.values()
            assert isinstance(cached_tables, ThermalWorkloadTable)
            assert all(outcome.ok for outcome in store)
            assert all(
                outcome.result.engine_used == "thermalpath" for outcome in store
            )

            scalar = SimulationEngine(
                _thermal_cluster(), SimulationConfig(), engine="scalar"
            ).run(mpeg4_application(num_frames=40, seed=11), OndemandGovernor())
            _assert_frame_by_frame_equivalent(
                scalar, store.outcome("ondemand").result
            )
        finally:
            campaign_registry._CLUSTERS.pop("a15-thermal-test", None)
            campaign_executor._TABLE_CACHE.clear()

    def test_bucketed_campaign_prewarms_power_slices_and_matches_scalar(self):
        """Fresh shared thermal tables are prewarmed across the expected
        junction range, and the prewarmed slices still reproduce scalar."""
        from repro.campaign import executor as campaign_executor
        from repro.campaign import registry as campaign_registry
        from repro.campaign.spec import CampaignSpec, FactorySpec

        def bucketed_cluster(**kwargs):
            return _thermal_cluster(power_cache_bucket_c=2.0, **kwargs)

        campaign_registry.register_cluster("a15-thermal-bucketed-test", bucketed_cluster)
        campaign_executor._TABLE_CACHE.clear()
        try:
            campaign = CampaignSpec.from_grid(
                name="thermal-prewarm-test",
                applications=[FactorySpec.of("mpeg4", num_frames=40)],
                governors=[FactorySpec.of("ondemand")],
                cluster=FactorySpec.of("a15-thermal-bucketed-test"),
                seeds=[11],
            )
            store = campaign_executor.run_campaign(campaign)
            (cached_tables,) = campaign_executor._TABLE_CACHE.values()
            assert isinstance(cached_tables, ThermalWorkloadTable)
            # Warmed from the initial temperature up to the full-load steady
            # state — strictly more buckets than the short run visits.
            assert len(cached_tables.power_slices) > 1

            scalar = SimulationEngine(
                bucketed_cluster(), SimulationConfig(), engine="scalar"
            ).run(mpeg4_application(num_frames=40, seed=11), OndemandGovernor())
            _assert_frame_by_frame_equivalent(
                scalar, store.outcome("ondemand").result
            )
        finally:
            campaign_registry._CLUSTERS.pop("a15-thermal-bucketed-test", None)
            campaign_executor._TABLE_CACHE.clear()

    def test_pinned_thermalpath_on_isothermal_cluster_caches_thermal_tables(self):
        """The provider follows the pinned backend, so the per-worker cache
        hits even when thermalpath runs a thermally-disabled cluster."""
        from repro.campaign import executor as campaign_executor
        from repro.campaign.spec import CampaignSpec, FactorySpec

        campaign_executor._TABLE_CACHE.clear()
        try:
            campaign = CampaignSpec.from_grid(
                name="pinned-thermal-cache-test",
                applications=[FactorySpec.of("mpeg4", num_frames=40)],
                governors=[FactorySpec.of("ondemand"), FactorySpec.of("conservative")],
                seeds=[11],
                engine="thermalpath",
            )
            store = campaign_executor.run_campaign(campaign)
            assert all(
                outcome.result.engine_used == "thermalpath" for outcome in store
            )
            assert len(campaign_executor._TABLE_CACHE) == 1  # one shared entry
            (cached_tables,) = campaign_executor._TABLE_CACHE.values()
            assert isinstance(cached_tables, ThermalWorkloadTable)
        finally:
            campaign_executor._TABLE_CACHE.clear()


class TestThermalPathSelection:
    def test_numpy_missing_falls_back_to_scalar(self, monkeypatch):
        from repro.sim import fastpath, tablepath

        monkeypatch.setattr(thermalpath, "_np", None)
        monkeypatch.setattr(tablepath, "_np", None)
        monkeypatch.setattr(fastpath, "_np", None)
        cluster = _thermal_cluster()
        assert not thermalpath.thermal_path_eligible(cluster)
        engine = SimulationEngine(cluster)
        result = engine.run(mpeg4_application(num_frames=30, seed=1), OndemandGovernor())
        assert result.engine_used == "scalar"
        assert result.num_frames == 30

    def test_eligible_with_numpy(self):
        assert thermalpath.thermal_path_eligible(_thermal_cluster())
        assert thermalpath.thermal_path_eligible(build_a15_cluster())
