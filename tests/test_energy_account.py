"""Unit tests for the energy-accounting helpers."""

import pytest

from repro.platform.energy import EnergyAccount, energy_saving_percent


@pytest.fixture
def account() -> EnergyAccount:
    return EnergyAccount(
        total_energy_j=100.0,
        total_time_s=50.0,
        frame_times_s=[0.030, 0.040, 0.050],
        reference_time_s=0.040,
    )


class TestEnergyAccount:
    def test_average_power(self, account):
        assert account.average_power_w == pytest.approx(2.0)

    def test_average_frame_time(self, account):
        assert account.average_frame_time_s == pytest.approx(0.040)

    def test_normalized_performance_definition(self, account):
        # Average frame time equals Tref -> normalised performance of exactly 1.
        assert account.normalized_performance == pytest.approx(1.0)

    def test_normalized_performance_over_and_under(self):
        fast = EnergyAccount(1.0, 1.0, [0.020], 0.040)
        slow = EnergyAccount(1.0, 1.0, [0.080], 0.040)
        assert fast.normalized_performance == pytest.approx(0.5)
        assert slow.normalized_performance == pytest.approx(2.0)

    def test_normalized_energy(self, account):
        assert account.normalized_energy(80.0) == pytest.approx(1.25)
        with pytest.raises(ValueError):
            account.normalized_energy(0.0)

    def test_deadline_miss_ratio(self, account):
        assert account.deadline_miss_ratio() == pytest.approx(1.0 / 3.0)
        assert account.deadline_miss_ratio(tolerance=0.5) == 0.0

    def test_empty_account(self):
        empty = EnergyAccount(0.0, 0.0, [], 0.040)
        assert empty.average_power_w == 0.0
        assert empty.average_frame_time_s == 0.0
        assert empty.deadline_miss_ratio() == 0.0


class TestEnergySaving:
    def test_positive_saving(self):
        assert energy_saving_percent(84.0, 100.0) == pytest.approx(16.0)

    def test_negative_saving_when_candidate_worse(self):
        assert energy_saving_percent(110.0, 100.0) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            energy_saving_percent(1.0, 0.0)
