"""Tests for the engine backend registry, capability negotiation and wiring.

The contract under test: engine selection goes through the registry in
:mod:`repro.sim.backends` only — a third-party backend registers and
participates in negotiation without touching ``sim/engine.py`` — explicit
engine requests are validated against declared capabilities with clear
errors, and the selection outcome is recorded uniformly as
``SimulationResult.engine_used`` through the engine, the campaign layer,
the CLI and the summary report.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.governors.ondemand import OndemandGovernor
from repro.governors.oracle import OracleGovernor
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.sim import backends, scalarpath
from repro.sim.backends import (
    BackendCapabilities,
    EngineBackend,
    EngineRequest,
    backend_names,
    capability_matrix,
    negotiate,
    register_backend,
    unregister_backend,
)
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.results import SimulationResult
from repro.workload.video import mpeg4_application

numpy = pytest.importorskip("numpy")


def _request(governor=None, cluster=None, config=None):
    cluster = cluster or build_a15_cluster()
    application = mpeg4_application(num_frames=10, seed=1)
    governor = governor or OndemandGovernor()
    # Mirror SimulationEngine.run: the governor is set up before negotiation
    # (the static-schedule probe needs the platform binding).
    governor.setup(
        SimulationEngine(cluster).platform_info(), application.requirement
    )
    return EngineRequest(
        cluster=cluster,
        application=application,
        governor=governor,
        config=config or SimulationConfig(),
    )


class TestRegistry:
    def test_builtin_backends_in_priority_order(self):
        assert backend_names() == [
            "fastpath",
            "jitpath",
            "tablepath",
            "thermalpath",
            "scalar",
            "batchpath",
        ]

    def test_capability_matrix(self):
        matrix = capability_matrix()
        assert matrix["scalar"] == BackendCapabilities(
            supports_thermal=True, supports_trace_capture=True
        )
        assert all(
            capabilities.supports_trace_capture
            for capabilities in matrix.values()
        )
        assert matrix["fastpath"].requires_static_schedule
        assert not matrix["fastpath"].supports_thermal
        assert matrix["tablepath"].supports_tables
        assert not matrix["tablepath"].supports_thermal
        assert matrix["thermalpath"].supports_thermal
        assert matrix["thermalpath"].supports_tables
        assert matrix["batchpath"].supports_batch
        assert matrix["batchpath"].supports_thermal
        assert matrix["jitpath"].supports_thermal
        assert matrix["jitpath"].supports_tables
        assert matrix["jitpath"].supports_batch
        assert matrix["batchpath"].supports_tables
        assert not any(
            capabilities.supports_batch
            for name, capabilities in matrix.items()
            if name not in ("batchpath", "jitpath")
        )

    def test_unknown_backend_rejected_with_names(self):
        with pytest.raises(SimulationError, match="registered backends"):
            backends.backend("warp-drive")

    def test_duplicate_and_invalid_registration_rejected(self):
        class Dup(EngineBackend):
            name = "scalar"

            def run(self, request):  # pragma: no cover - never invoked
                raise AssertionError

        with pytest.raises(SimulationError, match="already registered"):
            register_backend(Dup())

        class Nameless(Dup):
            name = ""

        with pytest.raises(SimulationError, match="invalid engine backend name"):
            register_backend(Nameless())
        with pytest.raises(SimulationError):
            unregister_backend("warp-drive")


@contextmanager
def _temporarily_registered(*entries: EngineBackend):
    """Register backends for one test, guaranteeing unregistration.

    Yields the registered backends; on exit every one still present is
    removed, so a failing assertion cannot leak registry state into the
    next test.
    """
    registered = []
    try:
        for entry in entries:
            register_backend(entry)
            registered.append(entry)
        yield entries
    finally:
        for entry in reversed(registered):
            try:
                unregister_backend(entry.name)
            except SimulationError:  # pragma: no cover - already removed
                pass


def _accepting_backend(name, priority):
    """A uniquely-typed accept-everything backend for negotiation tests."""

    class _Probe(EngineBackend):
        capabilities = BackendCapabilities(supports_thermal=True)

        def run(self, request):  # pragma: no cover - negotiation only
            raise AssertionError

    _Probe.name = name
    _Probe.priority = priority
    return _Probe()


class TestNegotiationOrder:
    def test_equal_priority_ties_break_by_registration_order(self):
        """Two backends at the same priority: the earlier registration wins."""
        first = _accepting_backend("tie-first", 99)
        second = _accepting_backend("tie-second", 99)
        with _temporarily_registered(first, second):
            assert negotiate(_request()).name == "tie-first"
            names = backend_names()
            assert names.index("tie-first") < names.index("tie-second")

    def test_unregister_restores_prior_negotiation_order(self):
        """Removing a winning backend falls negotiation back to the next one,
        and removing both restores the built-in order exactly."""
        baseline = backend_names()
        winner = _accepting_backend("pre-empt", 99)
        runner_up = _accepting_backend("runner-up", 98)
        with _temporarily_registered(winner, runner_up):
            assert negotiate(_request()).name == "pre-empt"
            unregister_backend("pre-empt")
            assert negotiate(_request()).name == "runner-up"
            unregister_backend("runner-up")
            assert backend_names() == baseline
            assert negotiate(_request()).name == "tablepath"
        assert backend_names() == baseline


class _RecordingBackend(EngineBackend):
    """A third-party backend: accepts everything, delegates to the scalar loop."""

    name = "recording"
    capabilities = BackendCapabilities(supports_thermal=True)
    priority = 99  # out-prioritise every built-in

    def __init__(self):
        self.calls = 0

    def run(self, request):
        self.calls += 1
        return scalarpath.simulate_scalar(
            request.cluster, request.application, request.governor, request.config
        )


class TestThirdPartyBackend:
    def test_registered_backend_wins_negotiation_without_engine_edits(self):
        backend = register_backend(_RecordingBackend())
        try:
            engine = SimulationEngine(build_a15_cluster())
            result = engine.run(
                mpeg4_application(num_frames=10, seed=1), OndemandGovernor()
            )
            assert backend.calls == 1
            assert result.engine_used == "recording"
            assert engine.engine_used == "recording"
            assert not engine.last_used_fast_path
            assert not engine.last_used_table_path
        finally:
            unregister_backend("recording")
        # After unregistration, auto negotiation reverts to the built-ins.
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(mpeg4_application(num_frames=10, seed=1), OndemandGovernor())
        assert result.engine_used == "tablepath"

    def test_explicit_request_for_registered_backend(self):
        backend = register_backend(_RecordingBackend())
        try:
            engine = SimulationEngine(build_a15_cluster(), engine="recording")
            result = engine.run(
                mpeg4_application(num_frames=10, seed=1), OracleGovernor()
            )
            assert backend.calls == 1
            assert result.engine_used == "recording"
        finally:
            unregister_backend("recording")


class TestNegotiation:
    def test_auto_prefers_fastest_eligible(self):
        assert negotiate(_request(OracleGovernor())).name == "fastpath"
        assert negotiate(_request(OndemandGovernor())).name == "tablepath"
        thermal = build_a15_cluster(enable_thermal=True)
        assert negotiate(_request(OndemandGovernor(), thermal)).name == "thermalpath"
        assert negotiate(_request(OracleGovernor(), thermal)).name == "thermalpath"

    def test_prefer_fast_path_false_maps_to_scalar(self):
        config = SimulationConfig(prefer_fast_path=False)
        assert negotiate(_request(config=config)).name == "scalar"

    def test_explicit_capability_mismatch_is_a_clear_error(self):
        with pytest.raises(SimulationError, match="static schedule"):
            negotiate(_request(OndemandGovernor()), engine="fastpath")
        thermal = build_a15_cluster(enable_thermal=True)
        with pytest.raises(SimulationError, match="thermal"):
            negotiate(_request(cluster=thermal), engine="tablepath")
        with pytest.raises(SimulationError, match="thermal"):
            negotiate(_request(OracleGovernor(), thermal), engine="fastpath")

    def test_numpy_seam_is_per_backend(self, monkeypatch):
        """Disabling one engine module's numpy rejects only that backend."""
        from repro.sim import thermalpath

        monkeypatch.setattr(thermalpath, "_np", None)
        assert negotiate(_request(OndemandGovernor())).name == "tablepath"
        assert negotiate(_request(OracleGovernor())).name == "fastpath"
        thermal = build_a15_cluster(enable_thermal=True)
        assert negotiate(_request(OndemandGovernor(), thermal)).name == "scalar"

    def test_failed_negotiation_clears_engine_used(self):
        application = mpeg4_application(num_frames=10, seed=1)
        engine = SimulationEngine(build_a15_cluster())
        engine.run(application, OndemandGovernor())
        assert engine.engine_used == "tablepath"
        engine.engine = "fastpath"  # ondemand exposes no static schedule
        with pytest.raises(SimulationError):
            engine.run(application, OndemandGovernor())
        assert engine.engine_used is None
        assert not engine.last_used_table_path

    def test_static_schedule_probed_once(self):
        class CountingOracle(OracleGovernor):
            probes = 0

            def static_schedule(self, application):
                type(self).probes += 1
                return super().static_schedule(application)

        governor = CountingOracle()
        engine = SimulationEngine(build_a15_cluster())
        engine.run(mpeg4_application(num_frames=10, seed=1), governor)
        assert CountingOracle.probes == 1

    def test_scalar_request_skips_schedule_probe(self):
        class NeverProbed(OracleGovernor):
            def static_schedule(self, application):  # pragma: no cover - guard
                raise AssertionError("scalar runs must not probe the schedule")

        engine = SimulationEngine(build_a15_cluster(), engine="scalar")
        result = engine.run(mpeg4_application(num_frames=10, seed=1), NeverProbed())
        assert result.engine_used == "scalar"


class TestEngineUsedReporting:
    @pytest.mark.parametrize(
        "engine_name, governor_factory",
        [
            ("scalar", OndemandGovernor),
            ("tablepath", OndemandGovernor),
            ("thermalpath", OndemandGovernor),
            ("fastpath", OracleGovernor),
        ],
    )
    def test_result_is_stamped(self, engine_name, governor_factory):
        engine = SimulationEngine(build_a15_cluster(), engine=engine_name)
        result = engine.run(mpeg4_application(num_frames=10, seed=1), governor_factory())
        assert result.engine_used == engine_name
        assert engine.engine_used == engine_name

    def test_result_aliases_removed(self):
        # The deprecated last_used_* aliases moved off SimulationResult
        # (the engine keeps its own); engine_used is the one source of truth.
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(mpeg4_application(num_frames=10, seed=1), OndemandGovernor())
        assert result.engine_used == "tablepath"
        assert not hasattr(result, "last_used_table_path")
        assert not hasattr(result, "last_used_fast_path")

    def test_engine_used_round_trips_through_json(self):
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(mpeg4_application(num_frames=10, seed=1), OndemandGovernor())
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone.engine_used == "tablepath"
        assert clone == result

    def test_hand_built_results_have_no_engine(self):
        result = SimulationResult("g", "a", 0.04)
        assert result.engine_used == ""
        assert "engine_used" not in result.to_dict()


class TestScenarioSpecEngine:
    def _scenario(self, engine="auto"):
        from repro.campaign.spec import FactorySpec, ScenarioSpec

        return ScenarioSpec(
            label="probe",
            application=FactorySpec.of("mpeg4", num_frames=10),
            governor=FactorySpec.of("ondemand"),
            engine=engine,
        )

    def test_engine_request_does_not_change_scenario_identity(self):
        """Every backend produces the same numbers, so the engine pin is
        not part of the scenario's content hash — shard outputs produced
        under --engine keep merging/resuming against the original spec."""
        auto = self._scenario()
        assert "engine" not in auto.to_dict()
        pinned = self._scenario("scalar")
        assert pinned.to_dict()["engine"] == "scalar"
        assert auto.scenario_id == pinned.scenario_id

    def test_round_trip(self):
        from repro.campaign.spec import ScenarioSpec

        pinned = self._scenario("thermalpath")
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(pinned.to_dict())))
        assert clone == pinned
        assert clone.engine == "thermalpath"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            self._scenario(engine="")

    def test_run_scenario_honours_engine(self):
        from repro.campaign.executor import run_scenario

        outcome = run_scenario(self._scenario("scalar"))
        assert outcome.result.engine_used == "scalar"
        outcome = run_scenario(self._scenario())
        assert outcome.result.engine_used == "tablepath"

    def test_capability_mismatch_becomes_failed_outcome(self):
        from repro.campaign.executor import run_scenario_safely

        outcome = run_scenario_safely(self._scenario("fastpath"))
        assert not outcome.ok
        assert "static schedule" in outcome.error

    def test_from_grid_engine_passthrough(self):
        from repro.campaign.spec import CampaignSpec, FactorySpec

        campaign = CampaignSpec.from_grid(
            name="grid",
            applications=[FactorySpec.of("mpeg4", num_frames=10)],
            governors=[FactorySpec.of("ondemand")],
            engine="scalar",
        )
        assert all(scenario.engine == "scalar" for scenario in campaign)


class TestCliEngineFlag:
    def _write_spec(self, tmp_path):
        from repro.campaign.spec import CampaignSpec, FactorySpec

        campaign = CampaignSpec.from_grid(
            name="cli-engine",
            applications=[FactorySpec.of("mpeg4", num_frames=10)],
            governors=[FactorySpec.of("ondemand"), FactorySpec.of("oracle")],
            seeds=[3],
        )
        spec_path = tmp_path / "spec.json"
        campaign.save(str(spec_path))
        return spec_path

    def test_engine_override_applies_to_every_scenario(self, tmp_path, capsys):
        from repro.campaign.cli import main
        from repro.campaign.results import CampaignResult

        spec_path = self._write_spec(tmp_path)
        output = tmp_path / "results.json"
        exit_code = main(
            [str(spec_path), "--engine", "scalar", "--output", str(output), "--quiet"]
        )
        assert exit_code == 0
        store = CampaignResult.load(str(output))
        assert all(o.result.engine_used == "scalar" for o in store)
        assert all(o.scenario.engine == "scalar" for o in store)
        summary = capsys.readouterr().out
        assert "Engine" in summary
        assert "scalar" in summary

    def test_auto_runs_report_negotiated_engines(self, tmp_path, capsys):
        from repro.campaign.cli import main
        from repro.campaign.results import CampaignResult

        spec_path = self._write_spec(tmp_path)
        output = tmp_path / "results.json"
        assert main([str(spec_path), "--output", str(output), "--quiet"]) == 0
        store = CampaignResult.load(str(output))
        engines = {o.label: o.result.engine_used for o in store}
        # The batch planner (on by default) routes closed-loop scenarios to
        # the batched engine; static-schedule governors keep the fastpath.
        assert engines == {"ondemand": "batchpath", "oracle": "fastpath"}
        summary = capsys.readouterr().out
        assert "batchpath" in summary and "fastpath" in summary
        assert "physics-table cache:" in summary

    def test_batch_size_zero_disables_the_planner(self, tmp_path):
        from repro.campaign.cli import main
        from repro.campaign.results import CampaignResult

        spec_path = self._write_spec(tmp_path)
        output = tmp_path / "results.json"
        code = main(
            [str(spec_path), "--batch-size", "0", "--output", str(output), "--quiet"]
        )
        assert code == 0
        store = CampaignResult.load(str(output))
        engines = {o.label: o.result.engine_used for o in store}
        assert engines == {"ondemand": "tablepath", "oracle": "fastpath"}

    def test_unknown_engine_rejected_by_argparse(self, tmp_path):
        from repro.campaign.cli import main

        spec_path = self._write_spec(tmp_path)
        with pytest.raises(SystemExit):
            main([str(spec_path), "--engine", "warp-drive"])

    def test_engine_pinned_shards_merge_against_original_spec(self, tmp_path):
        """--engine must not break the shard -> merge --spec round trip."""
        from repro.campaign.cli import main
        from repro.campaign.results import CampaignResult

        spec_path = self._write_spec(tmp_path)
        shard0 = tmp_path / "shard0.json"
        shard1 = tmp_path / "shard1.json"
        merged = tmp_path / "merged.json"
        for index, output in enumerate((shard0, shard1)):
            code = main(
                [
                    str(spec_path),
                    "--engine",
                    "scalar",
                    "--shard",
                    f"{index}/2",
                    "--output",
                    str(output),
                    "--quiet",
                ]
            )
            assert code == 0
        code = main(
            [
                "merge",
                str(shard0),
                str(shard1),
                "--spec",
                str(spec_path),
                "--output",
                str(merged),
                "--quiet",
            ]
        )
        assert code == 0
        store = CampaignResult.load(str(merged))
        assert sorted(o.label for o in store) == ["ondemand", "oracle"]
        assert all(o.result.engine_used == "scalar" for o in store)

    def test_resume_matches_runs_recorded_under_a_different_engine(self, tmp_path):
        """A prior auto run's outcomes are reused when re-running pinned."""
        from repro.campaign.executor import CampaignExecutor
        from repro.campaign.results import CampaignResult
        from repro.campaign.spec import CampaignSpec

        from dataclasses import replace

        campaign = CampaignSpec.load(str(self._write_spec(tmp_path)))
        first = CampaignExecutor().run(campaign)
        pinned = CampaignSpec(
            name=campaign.name,
            scenarios=tuple(
                replace(scenario, engine="scalar") for scenario in campaign.scenarios
            ),
        )
        executed = []
        resumed = CampaignExecutor().run(
            pinned,
            resume=first,
            progress=lambda label, done, total: executed.append(label),
        )
        assert executed == []  # every outcome carried over by id
        assert [o.result.engine_used for o in resumed] == [
            o.result.engine_used for o in first
        ]
