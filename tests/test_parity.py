"""Tests for the governor/engine parity harness and the golden trace store."""

import copy
import json
import os

import pytest

from repro.campaign.spec import FactorySpec, ScenarioSpec
from repro.errors import ParityError
from repro.testing.parity import (
    DecisionTrace,
    capture_decision_trace,
    check_goldens,
    diff_traces,
    eligible_engines,
    golden_path,
    load_golden,
    paper_governors,
    record_goldens,
    run_parity,
    smoke_applications,
    smoke_parity_campaign,
    write_golden,
)
from repro.testing.parity.trace import _rle_decode, _rle_encode


def scenario(governor="ondemand", application="mpeg4", num_frames=40, **gov_params):
    return ScenarioSpec(
        label=f"{application}/{governor}",
        application=FactorySpec.of(application, num_frames=num_frames),
        governor=FactorySpec.of(governor, **gov_params),
        cluster=FactorySpec.of("a15"),
        seed=11,
    )


# ---------------------------------------------------------------------------
# Trace capture.
# ---------------------------------------------------------------------------
class TestCaptureDecisionTrace:
    def test_captures_per_frame_decisions(self):
        trace = capture_decision_trace(scenario())
        assert trace.num_frames == 40
        assert len(trace.operating_index) == 40
        assert len(trace.frame_time_s) == 40
        assert len(trace.energy_j) == 40
        assert len(trace.temperature_c) == 40
        assert all(isinstance(i, int) for i in trace.operating_index)
        assert trace.engine == "scalar"
        assert trace.governor == "ondemand"
        assert trace.scenario_id == scenario().scenario_id

    def test_capture_is_deterministic(self):
        first = capture_decision_trace(scenario())
        second = capture_decision_trace(scenario())
        assert first.to_dict() == second.to_dict()

    def test_transitions_recorded_for_reactive_governor(self):
        trace = capture_decision_trace(scenario())
        assert trace.transitions  # ondemand moves around on mpeg4
        assert trace.transition_latency_s > 0.0

    def test_rl_governor_final_state_includes_qtable(self):
        trace = capture_decision_trace(scenario(governor="proposed"))
        assert "qtable_values" in trace.final_state
        assert "qtable_visit_counts" in trace.final_state
        assert trace.final_state["update_count"] > 0

    def test_static_governor_final_state(self):
        trace = capture_decision_trace(scenario(governor="performance"))
        assert trace.final_state["governor"] == "performance"
        assert trace.final_state["exploration_count"] == 0


class TestTraceEncoding:
    def test_rle_round_trip(self):
        values = [3, 3, 3, 1, 1, 7, 3, 3]
        assert _rle_decode(_rle_encode(values)) == values
        assert _rle_encode(values) == [[3, 3], [1, 2], [7, 1], [3, 2]]

    def test_rle_empty(self):
        assert _rle_encode([]) == []
        assert _rle_decode([]) == []

    def test_trace_json_round_trip(self):
        trace = capture_decision_trace(scenario())
        restored = DecisionTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert restored.to_dict() == trace.to_dict()

    def test_corrupt_rle_rejected(self):
        data = capture_decision_trace(scenario()).to_dict()
        data["operating_index_rle"] = data["operating_index_rle"][:-1]
        with pytest.raises(ParityError, match="RLE decodes"):
            DecisionTrace.from_dict(data)


# ---------------------------------------------------------------------------
# Differential comparison.
# ---------------------------------------------------------------------------
class TestDiffTraces:
    def test_identical_traces_match(self):
        trace = capture_decision_trace(scenario())
        assert diff_traces(trace, copy.deepcopy(trace)) is None

    def test_decision_drift_names_the_frame(self):
        reference = capture_decision_trace(scenario())
        drifted = copy.deepcopy(reference)
        drifted.operating_index[17] += 1
        divergence = diff_traces(reference, drifted)
        assert divergence is not None
        assert divergence.field == "operating_index"
        assert divergence.frame == 17
        assert "frame 17" in divergence.describe()
        assert divergence.reference_state["operating_index"] == (
            reference.operating_index[17]
        )
        assert divergence.candidate_state["operating_index"] == (
            reference.operating_index[17] + 1
        )

    def test_miss_set_drift_names_the_frame(self):
        reference = capture_decision_trace(scenario())
        drifted = copy.deepcopy(reference)
        drifted.miss_frames = sorted(set(drifted.miss_frames) ^ {5})
        divergence = diff_traces(reference, drifted)
        assert divergence.field == "miss_frames"
        assert divergence.frame == 5

    def test_float_drift_beyond_tolerance_detected(self):
        reference = capture_decision_trace(scenario())
        drifted = copy.deepcopy(reference)
        drifted.energy_j[3] *= 1.0 + 1e-6
        divergence = diff_traces(reference, drifted)
        assert divergence.field == "energy_j"
        assert divergence.frame == 3

    def test_float_noise_within_tolerance_ignored(self):
        reference = capture_decision_trace(scenario())
        drifted = copy.deepcopy(reference)
        drifted.energy_j[3] *= 1.0 + 1e-12
        assert diff_traces(reference, drifted) is None

    def test_final_state_drift_detected(self):
        reference = capture_decision_trace(scenario(governor="proposed"))
        drifted = copy.deepcopy(reference)
        drifted.final_state["qtable_values"][0][0] += 0.5
        divergence = diff_traces(reference, drifted)
        assert divergence.field == "final_state.qtable_values"

    def test_frame_count_mismatch(self):
        reference = capture_decision_trace(scenario())
        shorter = copy.deepcopy(reference)
        shorter.num_frames -= 1
        shorter.operating_index = shorter.operating_index[:-1]
        divergence = diff_traces(reference, shorter)
        assert divergence.field == "num_frames"


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------
class TestHarness:
    def test_eligible_engines_include_reference_and_table_paths(self):
        engines = eligible_engines(scenario())
        assert "scalar" in engines
        assert "tablepath" in engines
        # fastpath needs a static schedule; ondemand is reactive.
        assert "fastpath" not in engines

    def test_fastpath_eligible_for_static_governor(self):
        assert "fastpath" in eligible_engines(scenario(governor="performance"))

    def test_run_parity_all_backends_agree(self):
        report = run_parity([scenario()])
        assert report.ok
        assert len(report.results) >= 2
        assert all(result.status == "ok" for result in report.results)

    def test_smoke_matrix_covers_paper_governors(self):
        campaign = smoke_parity_campaign()
        governors = {spec.governor.name for spec in campaign.scenarios}
        assert governors == set(paper_governors())
        applications = {spec.application.name for spec in campaign.scenarios}
        assert applications == set(smoke_applications())

    def test_error_in_one_backend_does_not_abort(self):
        # Pinning an engine list to a backend that cannot run the scenario
        # simply excludes it from the eligible set; a genuinely broken
        # backend surfaces as an "error" pair (exercised via a bad engine
        # name at capture level).
        with pytest.raises(Exception):
            capture_decision_trace(scenario(), engine="no-such-backend")


# ---------------------------------------------------------------------------
# Golden store.
# ---------------------------------------------------------------------------
class TestGoldenStore:
    def test_record_then_check_round_trip(self, tmp_path):
        scenarios = [scenario(num_frames=30)]
        record_goldens(scenarios, goldens_dir=str(tmp_path))
        report = check_goldens(scenarios, goldens_dir=str(tmp_path))
        assert report.ok
        engines = {result.engine for result in report.results}
        assert "scalar" in engines  # the reference itself is re-checked

    def test_injected_decision_drift_is_caught_with_frame_index(self, tmp_path):
        scenarios = [scenario(num_frames=30)]
        record_goldens(scenarios, goldens_dir=str(tmp_path))
        path = golden_path(str(tmp_path), scenarios[0])
        _, trace = load_golden(path)
        # Inject a one-frame decision drift into the stored golden.
        trace.operating_index[12] = (trace.operating_index[12] + 1) % 10
        write_golden(path, scenarios[0], trace)
        report = check_goldens(scenarios, goldens_dir=str(tmp_path))
        assert not report.ok
        failure = report.failures[0]
        assert failure.status == "divergent"
        assert failure.divergence.field == "operating_index"
        assert failure.divergence.frame == 12
        assert "frame 12" in failure.divergence.describe()
        assert "frame 12" in report.summary()

    def test_missing_golden_raises_listing_path(self, tmp_path):
        with pytest.raises(ParityError, match="missing golden"):
            check_goldens([scenario()], goldens_dir=str(tmp_path))

    def test_changed_scenario_definition_rejected(self, tmp_path):
        recorded = scenario(num_frames=30)
        record_goldens([recorded], goldens_dir=str(tmp_path))
        changed = scenario(num_frames=31)  # same label, different content
        with pytest.raises(ParityError, match="re-record"):
            check_goldens([changed], goldens_dir=str(tmp_path))

    def test_format_version_enforced(self, tmp_path):
        recorded = scenario(num_frames=30)
        record_goldens([recorded], goldens_dir=str(tmp_path))
        path = golden_path(str(tmp_path), recorded)
        with open(path) as handle:
            document = json.load(handle)
        document["format"] = 999
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ParityError, match="format"):
            load_golden(path)

    def test_golden_path_flattens_labels(self, tmp_path):
        assert golden_path("d", scenario()).endswith(
            os.path.join("d", "mpeg4--ondemand.json")
        )


# ---------------------------------------------------------------------------
# The committed goldens themselves: this is the parity gate.
# ---------------------------------------------------------------------------
class TestCommittedGoldens:
    def test_committed_goldens_exist_for_full_smoke_matrix(self):
        for spec in smoke_parity_campaign().scenarios:
            assert os.path.exists(golden_path("tests/goldens", spec)), (
                f"missing golden for {spec.label}; run `repro-parity record`"
            )

    def test_every_paper_governor_passes_on_every_backend(self):
        report = check_goldens(goldens_dir="tests/goldens")
        assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# Governor decision-state hooks.
# ---------------------------------------------------------------------------
class TestDecisionStateHooks:
    def test_ondemand_reports_tunables(self):
        trace = capture_decision_trace(scenario())
        assert trace.final_state["up_threshold"] == pytest.approx(0.8)
        assert "hold_remaining" in trace.final_state

    def test_conservative_reports_thresholds(self):
        trace = capture_decision_trace(scenario(governor="conservative"))
        assert "down_threshold" in trace.final_state

    def test_decision_state_is_json_serialisable(self):
        for governor in paper_governors():
            trace = capture_decision_trace(scenario(governor=governor, num_frames=20))
            json.dumps(trace.final_state)


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------
class TestParityCli:
    def test_check_cli_passes_on_committed_goldens(self, capsys, tmp_path):
        from repro.testing.parity.cli import main

        report_path = tmp_path / "report.json"
        code = main(["check", "--report", str(report_path)])
        assert code == 0
        document = json.loads(report_path.read_text())
        assert document["ok"] is True
        assert document["pairs"] > 0
        assert "ok" in capsys.readouterr().out

    def test_check_cli_fails_on_drifted_golden(self, tmp_path):
        from repro.testing.parity.cli import main

        spec = scenario(num_frames=30)
        record_goldens([spec], goldens_dir=str(tmp_path / "g"))
        path = golden_path(str(tmp_path / "g"), spec)
        _, trace = load_golden(path)
        trace.operating_index[7] = (trace.operating_index[7] + 1) % 10
        write_golden(path, spec, trace)
        # The CLI checks the full smoke matrix; its goldens are absent here,
        # so missing-goldens is the expected usage error (exit 2).
        code = main(["check", "--goldens-dir", str(tmp_path / "g")])
        assert code == 2

    def test_record_cli_writes_goldens(self, capsys, tmp_path):
        from repro.testing.parity.cli import main

        code = main(["record", "--goldens-dir", str(tmp_path / "goldens")])
        assert code == 0
        out = capsys.readouterr().out
        assert "14 golden decision traces recorded" in out
        assert len(list((tmp_path / "goldens").glob("*.json"))) == 14

    def test_record_then_check_via_cli(self, tmp_path):
        from repro.testing.parity.cli import main

        goldens = str(tmp_path / "goldens")
        assert main(["record", "--goldens-dir", goldens]) == 0
        assert main(["check", "--goldens-dir", goldens]) == 0
