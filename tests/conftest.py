"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import _compat
from repro.platform.cluster import Cluster
from repro.platform.core import Core
from repro.platform.odroid_xu3 import A15_VF_TABLE, build_a15_cluster
from repro.platform.vf_table import OperatingPoint, VFTable
from repro.rtm.governor import PlatformInfo
from repro.workload.application import Application, PerformanceRequirement
from repro.workload.task import Frame
from repro.workload.video import h264_football_application, mpeg4_application
from repro.workload.fft import fft_application


@pytest.fixture(autouse=True)
def _numba_less_negotiation(monkeypatch):
    """Pin engine negotiation to the numba-less default for every test.

    The tier-1 suite asserts *which* backend auto-negotiation selects
    (tablepath/thermalpath/...), and those expectations must not flip when
    the optional ``jit`` extra happens to be installed (the CI ``jit`` job
    runs this same suite with numba present).  Tests that exercise the
    compiled backend — :mod:`tests.test_jitpath` — opt back in by
    monkeypatching ``HAVE_NUMBA = True`` after this fixture, which also
    makes them runnable on numba-less machines (interpreted kernels are
    bit-identical by construction).
    """
    monkeypatch.setattr(_compat, "HAVE_NUMBA", False)


@pytest.fixture
def small_vf_table() -> VFTable:
    """A tiny 4-point table used by unit tests that don't need the full 19 OPPs."""
    return VFTable(
        [
            OperatingPoint(500e6, 0.90),
            OperatingPoint(1000e6, 1.00),
            OperatingPoint(1500e6, 1.10),
            OperatingPoint(2000e6, 1.30),
        ]
    )


@pytest.fixture
def a15_table() -> VFTable:
    """The full ODROID-XU3 A15 operating-point table."""
    return A15_VF_TABLE


@pytest.fixture
def a15_cluster() -> Cluster:
    """A freshly built 4-core A15 cluster model."""
    return build_a15_cluster()


@pytest.fixture
def small_cluster(small_vf_table) -> Cluster:
    """A 2-core cluster on the tiny table, for fast deterministic unit tests."""
    return Cluster(
        name="mini",
        cores=[Core(core_id=0), Core(core_id=1)],
        vf_table=small_vf_table,
    )


@pytest.fixture
def platform_info(a15_table) -> PlatformInfo:
    """PlatformInfo for a 4-core cluster on the A15 table."""
    return PlatformInfo(num_cores=4, vf_table=a15_table)


@pytest.fixture
def requirement_25fps() -> PerformanceRequirement:
    """A 25 fps performance requirement (Tref = 40 ms)."""
    return PerformanceRequirement(frames_per_second=25.0)


def make_constant_application(
    num_frames: int = 50,
    cycles_per_thread: float = 2.0e7,
    num_threads: int = 4,
    fps: float = 25.0,
    name: str = "constant",
) -> Application:
    """An application whose every frame has identical per-thread demand."""
    requirement = PerformanceRequirement(frames_per_second=fps)
    frames = [
        Frame(
            index=i,
            thread_cycles=tuple([cycles_per_thread] * num_threads),
            deadline_s=requirement.tref_s,
            kind="const",
        )
        for i in range(num_frames)
    ]
    return Application(name=name, frames=frames, requirement=requirement)


@pytest.fixture
def constant_application() -> Application:
    """A 50-frame constant-demand application at 25 fps."""
    return make_constant_application()


@pytest.fixture
def short_video_application() -> Application:
    """A short H.264 football workload for integration tests."""
    return h264_football_application(num_frames=200, seed=3)


@pytest.fixture
def short_mpeg4_application() -> Application:
    """A short MPEG-4 workload for integration tests."""
    return mpeg4_application(num_frames=150, seed=5)


@pytest.fixture
def short_fft_application() -> Application:
    """A short FFT workload for integration tests."""
    return fft_application(num_frames=150, seed=5)
