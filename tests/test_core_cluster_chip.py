"""Unit tests for the core, cluster and chip execution models."""

import pytest

from repro.errors import PlatformError
from repro.platform.chip import Chip
from repro.platform.cluster import Cluster
from repro.platform.core import Core
from repro.platform.odroid_xu3 import build_a15_cluster, build_odroid_xu3


class TestCore:
    def test_execute_busy_and_idle_split(self, small_vf_table):
        core = Core(core_id=0)
        point = small_vf_table[1]  # 1 GHz
        result = core.execute(cycles=10e6, point=point, interval_s=0.020)
        assert result.busy_time_s == pytest.approx(0.010)
        assert result.idle_time_s == pytest.approx(0.010)
        assert result.utilisation == pytest.approx(0.5)
        assert result.idle_cycles == pytest.approx(10e6)

    def test_no_idle_when_busy_exceeds_interval(self, small_vf_table):
        core = Core(core_id=0)
        result = core.execute(cycles=30e6, point=small_vf_table[1], interval_s=0.020)
        assert result.idle_time_s == 0.0
        assert result.total_time_s == pytest.approx(0.030)

    def test_pmu_accumulates_across_executions(self, small_vf_table):
        core = Core(core_id=1)
        core.execute(5e6, small_vf_table[1], 0.0)
        core.execute(7e6, small_vf_table[1], 0.0)
        assert core.pmu.busy_cycles == pytest.approx(12e6)

    def test_negative_cycles_rejected(self, small_vf_table):
        with pytest.raises(PlatformError):
            Core(core_id=0).execute(-1.0, small_vf_table[0])

    def test_default_name(self):
        assert Core(core_id=3).name == "core-3"
        with pytest.raises(PlatformError):
            Core(core_id=-1)


class TestCluster:
    def test_execution_duration_is_critical_path(self, small_cluster):
        small_cluster.set_operating_index(1)  # 1 GHz
        result = small_cluster.execute_workload([10e6, 20e6])
        assert result.duration_s == pytest.approx(0.020)
        assert result.max_busy_cycles == pytest.approx(20e6)
        assert result.total_busy_cycles == pytest.approx(30e6)

    def test_minimum_interval_pads_with_idle(self, small_cluster):
        small_cluster.set_operating_index(1)
        result = small_cluster.execute_workload([10e6, 10e6], minimum_interval_s=0.040)
        assert result.duration_s == pytest.approx(0.040)
        # Both cores were busy 10 ms of the 40 ms interval.
        assert all(r.utilisation == pytest.approx(0.25) for r in result.core_results)

    def test_too_many_demands_rejected(self, small_cluster):
        with pytest.raises(PlatformError):
            small_cluster.execute_workload([1e6, 1e6, 1e6])

    def test_short_demand_list_padded_with_zeros(self, small_cluster):
        result = small_cluster.execute_workload([5e6])
        assert result.core_results[1].cycles == 0.0

    def test_energy_increases_with_frequency_for_fixed_work(self, a15_cluster):
        demand = [4e7] * 4
        a15_cluster.set_operating_index(6)
        slow = a15_cluster.execute_workload(demand, minimum_interval_s=0.040)
        a15_cluster.reset()
        a15_cluster.set_operating_index(18)
        fast = a15_cluster.execute_workload(demand, minimum_interval_s=0.040)
        assert fast.energy_j > slow.energy_j

    def test_transition_costs_charged_to_interval(self, small_cluster):
        transition = small_cluster.set_operating_index(0)
        result = small_cluster.execute_workload([1e6, 1e6], pending_transition=transition)
        assert result.duration_s >= transition.latency_s
        assert result.energy_j >= transition.energy_j

    def test_energy_meter_and_time_accumulate(self, small_cluster):
        small_cluster.execute_workload([5e6, 5e6], minimum_interval_s=0.01)
        small_cluster.execute_workload([5e6, 5e6], minimum_interval_s=0.01)
        assert small_cluster.total_energy_j > 0.0
        assert small_cluster.time_s >= 0.02

    def test_reset_restores_initial_state(self, small_cluster):
        small_cluster.set_operating_index(0)
        small_cluster.execute_workload([5e6, 5e6])
        small_cluster.reset(operating_index=2)
        assert small_cluster.total_energy_j == 0.0
        assert small_cluster.time_s == 0.0
        assert small_cluster.current_index == 2
        assert all(core.pmu.busy_cycles == 0.0 for core in small_cluster.cores)

    def test_idle_cluster_consumes_little_power(self, a15_cluster):
        a15_cluster.set_operating_index(18)
        result = a15_cluster.idle(duration_s=0.1)
        # With cpuidle modelling the idle padding runs at the slowest OPP.
        assert result.average_power_w < 1.0

    def test_measured_power_close_to_true_power(self, a15_cluster):
        a15_cluster.set_operating_index(12)
        result = a15_cluster.execute_workload([3e7] * 4, minimum_interval_s=0.040)
        assert result.measured_power_w == pytest.approx(result.average_power_w, rel=0.05)

    def test_requires_at_least_one_core(self, small_vf_table):
        with pytest.raises(PlatformError):
            Cluster(name="empty", cores=[], vf_table=small_vf_table)


class TestChip:
    def test_odroid_xu3_has_both_clusters(self):
        chip = build_odroid_xu3()
        assert set(chip.cluster_names) == {"a15", "a7"}
        assert chip.num_cores == 8

    def test_cluster_lookup(self):
        chip = build_odroid_xu3()
        assert chip.cluster("a15").num_cores == 4
        with pytest.raises(PlatformError):
            chip.cluster("gpu")

    def test_total_energy_aggregates_clusters(self):
        chip = build_odroid_xu3()
        chip.cluster("a15").execute_workload([1e7] * 4)
        chip.cluster("a7").execute_workload([1e6] * 4)
        assert chip.total_energy_j == pytest.approx(
            chip.cluster("a15").total_energy_j + chip.cluster("a7").total_energy_j
        )

    def test_reset_propagates(self):
        chip = build_odroid_xu3()
        chip.cluster("a15").execute_workload([1e7] * 4)
        chip.reset()
        assert chip.total_energy_j == 0.0

    def test_duplicate_cluster_names_rejected(self):
        a = build_a15_cluster()
        b = build_a15_cluster()
        with pytest.raises(PlatformError):
            Chip(name="bad", clusters=[a, b])

    def test_chip_requires_clusters(self):
        with pytest.raises(PlatformError):
            Chip(name="empty", clusters=[])


class TestOdroidXU3Preset:
    def test_a15_cluster_dimensions(self):
        cluster = build_a15_cluster()
        assert cluster.num_cores == 4
        assert len(cluster.vf_table) == 19

    def test_a15_faster_and_hungrier_than_a7(self):
        chip = build_odroid_xu3()
        a15, a7 = chip.cluster("a15"), chip.cluster("a7")
        assert a15.vf_table.max_point.frequency_hz > a7.vf_table.max_point.frequency_hz
        a15_power = a15.power_model.cluster_power(a15.vf_table.max_point, [1.0] * 4).total_w
        a7_power = a7.power_model.cluster_power(a7.vf_table.max_point, [1.0] * 4).total_w
        assert a15_power > a7_power

    def test_thermal_disabled_by_default(self):
        cluster = build_a15_cluster()
        before = cluster.thermal_model.temperature_c
        cluster.execute_workload([8e7] * 4, minimum_interval_s=0.040)
        assert cluster.thermal_model.temperature_c == before

    def test_thermal_can_be_enabled(self):
        cluster = build_a15_cluster(enable_thermal=True)
        before = cluster.thermal_model.temperature_c
        cluster.set_operating_index(18)
        for _ in range(50):
            cluster.execute_workload([8e7] * 4, minimum_interval_s=0.040)
        assert cluster.thermal_model.temperature_c > before
