"""Unit tests for the voltage-frequency operating-point table."""

import pytest

from repro.errors import ConfigurationError, InvalidOperatingPointError
from repro.platform.vf_table import OperatingPoint, VFTable, make_linear_vf_table


class TestOperatingPoint:
    def test_frequency_and_voltage_are_stored(self):
        point = OperatingPoint(frequency_hz=1.2e9, voltage_v=1.05)
        assert point.frequency_hz == 1.2e9
        assert point.voltage_v == 1.05
        assert point.frequency_mhz == pytest.approx(1200.0)

    def test_time_for_cycles(self):
        point = OperatingPoint(frequency_hz=1e9, voltage_v=1.0)
        assert point.time_for_cycles(2e9) == pytest.approx(2.0)
        assert point.time_for_cycles(0.0) == 0.0

    def test_time_for_negative_cycles_rejected(self):
        point = OperatingPoint(frequency_hz=1e9, voltage_v=1.0)
        with pytest.raises(ValueError):
            point.time_for_cycles(-1.0)

    @pytest.mark.parametrize("frequency,voltage", [(0.0, 1.0), (-1e9, 1.0), (1e9, 0.0), (1e9, -0.5)])
    def test_invalid_values_rejected(self, frequency, voltage):
        with pytest.raises(ConfigurationError):
            OperatingPoint(frequency_hz=frequency, voltage_v=voltage)


class TestVFTable:
    def test_points_sorted_by_frequency(self):
        table = VFTable(
            [
                OperatingPoint(2e9, 1.3),
                OperatingPoint(1e9, 1.0),
                OperatingPoint(1.5e9, 1.1),
            ]
        )
        frequencies = table.frequencies_hz
        assert frequencies == sorted(frequencies)
        assert table.min_point.frequency_hz == 1e9
        assert table.max_point.frequency_hz == 2e9

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            VFTable([])

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(ConfigurationError):
            VFTable([OperatingPoint(1e9, 1.0), OperatingPoint(1e9, 1.1)])

    def test_decreasing_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            VFTable([OperatingPoint(1e9, 1.2), OperatingPoint(2e9, 1.0)])

    def test_indexing_and_out_of_range(self, small_vf_table):
        assert small_vf_table[0].frequency_hz == 500e6
        assert small_vf_table[len(small_vf_table) - 1].frequency_hz == 2000e6
        with pytest.raises(InvalidOperatingPointError):
            _ = small_vf_table[99]

    def test_index_of_frequency(self, small_vf_table):
        assert small_vf_table.index_of_frequency(1000e6) == 1
        with pytest.raises(InvalidOperatingPointError):
            small_vf_table.index_of_frequency(1234e6)

    def test_clamp_index(self, small_vf_table):
        assert small_vf_table.clamp_index(-3) == 0
        assert small_vf_table.clamp_index(2) == 2
        assert small_vf_table.clamp_index(99) == len(small_vf_table) - 1

    def test_nearest_index_rounds_up(self, small_vf_table):
        assert small_vf_table.nearest_index_for_frequency(600e6) == 1
        assert small_vf_table.nearest_index_for_frequency(1000e6) == 1
        assert small_vf_table.nearest_index_for_frequency(1.0) == 0
        assert small_vf_table.nearest_index_for_frequency(5e9) == len(small_vf_table) - 1

    def test_lowest_index_meeting_deadline(self, small_vf_table):
        # 30e6 cycles in 40 ms needs 750 MHz -> first point >= 750 MHz is 1 GHz.
        assert small_vf_table.lowest_index_meeting(30e6, 0.040) == 1
        # Impossible demand falls back to the fastest point.
        assert small_vf_table.lowest_index_meeting(1e12, 0.040) == len(small_vf_table) - 1
        with pytest.raises(ValueError):
            small_vf_table.lowest_index_meeting(1e6, 0.0)

    def test_lowest_index_meeting_is_sufficient(self, a15_table):
        cycles, deadline = 5.3e7, 0.040
        index = a15_table.lowest_index_meeting(cycles, deadline)
        chosen = a15_table[index]
        assert chosen.time_for_cycles(cycles) <= deadline
        if index > 0:
            slower = a15_table[index - 1]
            assert slower.time_for_cycles(cycles) > deadline

    def test_subset(self, small_vf_table):
        subset = small_vf_table.subset([0, 2])
        assert len(subset) == 2
        assert subset.max_point.frequency_hz == 1500e6

    def test_equality(self, small_vf_table):
        clone = VFTable(list(small_vf_table))
        assert clone == small_vf_table
        assert small_vf_table != VFTable([OperatingPoint(1e9, 1.0)])


class TestMakeLinearVFTable:
    def test_endpoints_and_length(self):
        table = make_linear_vf_table(200e6, 2000e6, 19, 0.9, 1.35)
        assert len(table) == 19
        assert table.min_point.frequency_hz == pytest.approx(200e6)
        assert table.max_point.frequency_hz == pytest.approx(2000e6)
        assert table.min_point.voltage_v == pytest.approx(0.9)
        assert table.max_point.voltage_v == pytest.approx(1.35)

    def test_superlinear_voltage(self):
        table = make_linear_vf_table(200e6, 2000e6, 10, 0.9, 1.35, exponent=2.0)
        midpoint = table[5]
        linear_mid = 0.9 + (5 / 9) * 0.45
        assert midpoint.voltage_v < linear_mid

    def test_single_step(self):
        table = make_linear_vf_table(1e9, 1e9, 1, 1.0, 1.0)
        assert len(table) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            make_linear_vf_table(1e9, 2e9, 0, 0.9, 1.3)
        with pytest.raises(ConfigurationError):
            make_linear_vf_table(2e9, 1e9, 5, 0.9, 1.3)


class TestA15Table:
    def test_nineteen_operating_points(self, a15_table):
        assert len(a15_table) == 19

    def test_range_200_to_2000_mhz_in_100_mhz_steps(self, a15_table):
        frequencies = [p.frequency_mhz for p in a15_table]
        assert frequencies[0] == pytest.approx(200.0)
        assert frequencies[-1] == pytest.approx(2000.0)
        steps = [b - a for a, b in zip(frequencies, frequencies[1:])]
        assert all(step == pytest.approx(100.0) for step in steps)

    def test_voltage_monotonically_non_decreasing(self, a15_table):
        voltages = [p.voltage_v for p in a15_table]
        assert voltages == sorted(voltages)
