"""Tests for the experiment drivers (reduced-scale runs of every table/figure).

The full-scale shape assertions live in the benchmark harness
(``benchmarks/``); these tests check that each driver runs end to end at a
small scale, returns well-formed structured results and renders its table.
"""

import pytest

from repro.experiments import (
    ExperimentSettings,
    format_figure3,
    format_table1,
    format_table2,
    format_table3,
    run_figure3,
    run_table1,
    run_table2,
    run_table3,
)

SMALL = ExperimentSettings(num_frames=300, num_seeds=1)


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(SMALL)


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(SMALL)


@pytest.fixture(scope="module")
def table3_result():
    return run_table3(SMALL)


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure3(SMALL)


class TestTable1Driver:
    def test_has_all_three_methodologies(self, table1_result):
        names = {row.methodology for row in table1_result.rows}
        assert names == {"Linux Ondemand [5]", "Multi-core DVFS control [20]", "Proposed"}

    def test_energies_normalised_above_one(self, table1_result):
        for row in table1_result.rows:
            assert row.normalized_energy > 1.0
            assert 0.0 < row.normalized_performance < 1.5

    def test_proposed_beats_ondemand_on_energy(self, table1_result):
        proposed = table1_result.row_for("Proposed")
        ondemand = table1_result.row_for("Linux Ondemand [5]")
        assert proposed.normalized_energy < ondemand.normalized_energy
        assert table1_result.energy_saving_vs_ondemand_percent > 0.0

    def test_row_for_unknown_methodology_raises(self, table1_result):
        with pytest.raises(KeyError):
            table1_result.row_for("does-not-exist")

    def test_formatting_contains_paper_columns(self, table1_result):
        text = format_table1(table1_result)
        assert "Norm. energy (paper)" in text
        assert "1.29" in text  # the paper's ondemand number is shown for comparison


class TestTable2Driver:
    def test_covers_three_applications(self, table2_rows):
        assert {row.application for row in table2_rows} == {
            "MPEG4 (30 fps)",
            "H.264 (15 fps)",
            "FFT (32 fps)",
        }

    def test_counts_are_positive_and_bounded(self, table2_rows):
        for row in table2_rows:
            assert 0 < row.explorations_ours <= 300
            assert 0 < row.explorations_upd <= 300

    def test_paper_reference_values_attached(self, table2_rows):
        by_name = {row.application: row for row in table2_rows}
        assert by_name["FFT (32 fps)"].paper_ours == 74
        assert by_name["MPEG4 (30 fps)"].paper_upd == 144

    def test_formatting(self, table2_rows):
        text = format_table2(table2_rows)
        assert "UPD [21]" in text and "Proposed (ours)" in text


class TestTable3Driver:
    def test_learning_epochs_positive(self, table3_result):
        assert table3_result.proposed_learning_epochs > 0
        assert table3_result.baseline_learning_epochs > 0

    def test_overheads_positive(self, table3_result):
        assert table3_result.proposed_overhead_s > 0.0
        assert table3_result.baseline_overhead_s > 0.0

    def test_paper_values_attached(self, table3_result):
        assert table3_result.paper_baseline_epochs == 205
        assert table3_result.paper_proposed_epochs == 105

    def test_formatting(self, table3_result):
        text = format_table3(table3_result)
        assert "ffmpeg decode" in text
        assert "205" in text


class TestFigure3Driver:
    def test_series_lengths_match(self, figure3_result):
        assert len(figure3_result.predicted_cycles) == len(figure3_result.actual_cycles)
        assert figure3_result.num_frames > 200
        assert len(figure3_result.average_slack) >= figure3_result.num_frames

    def test_gamma_is_paper_value(self, figure3_result):
        assert figure3_result.ewma_gamma == pytest.approx(0.6)

    def test_misprediction_percentages_reasonable(self, figure3_result):
        assert 0.0 < figure3_result.late_misprediction_percent < 20.0
        assert 0.0 < figure3_result.early_misprediction_percent < 30.0

    def test_formatting(self, figure3_result):
        text = format_figure3(figure3_result)
        assert "Mean misprediction" in text
        assert "0.6" in text
