"""Tests for the simulation engine, results, metrics, runner and comparison."""

import pytest

from repro.errors import SimulationError
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.sim.comparison import compare_to_oracle, pairwise_energy_saving
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.epoch import FrameRecord
from repro.sim.metrics import energy_by_phase, frequency_histogram, summarize_records
from repro.sim.results import SimulationResult
from repro.sim.runner import ExperimentRunner
from tests.conftest import make_constant_application


class TestSimulationEngine:
    def test_produces_one_record_per_frame(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        result = engine.run(constant_application, PerformanceGovernor())
        assert result.num_frames == constant_application.num_frames
        assert all(isinstance(r, FrameRecord) for r in result.records)
        assert result.governor_name == "performance"
        assert result.application_name == constant_application.name

    def test_performance_governor_meets_all_deadlines(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        result = engine.run(constant_application, PerformanceGovernor())
        assert result.deadline_miss_ratio == 0.0
        assert all(r.operating_index == len(a15_cluster.vf_table) - 1 for r in result.records)

    def test_powersave_governor_misses_deadlines_on_heavy_load(self, a15_cluster):
        application = make_constant_application(num_frames=20, cycles_per_thread=4e7)
        engine = SimulationEngine(a15_cluster)
        result = engine.run(application, PowersaveGovernor())
        assert result.deadline_miss_ratio == 1.0
        assert result.normalized_performance > 1.0

    def test_oracle_beats_performance_governor_on_energy(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        performance = engine.run(constant_application, PerformanceGovernor())
        oracle = engine.run(constant_application, OracleGovernor())
        assert oracle.total_energy_j < performance.total_energy_j
        assert oracle.deadline_miss_ratio == 0.0

    def test_idle_until_deadline_pads_interval(self, a15_cluster, constant_application):
        padded = SimulationEngine(a15_cluster, SimulationConfig(idle_until_deadline=True)).run(
            constant_application, PerformanceGovernor()
        )
        assert all(
            r.interval_s >= constant_application.reference_time_s - 1e-12
            for r in padded.records
        )
        unpadded = SimulationEngine(a15_cluster, SimulationConfig(idle_until_deadline=False)).run(
            constant_application, PerformanceGovernor()
        )
        assert unpadded.total_time_s < padded.total_time_s

    def test_governor_overhead_charged_when_enabled(self, a15_cluster, constant_application):
        with_overhead = SimulationEngine(
            a15_cluster, SimulationConfig(charge_governor_overhead=True)
        ).run(constant_application, MultiCoreRLGovernor())
        assert with_overhead.total_overhead_s > 0.0
        without_overhead = SimulationEngine(
            a15_cluster, SimulationConfig(charge_governor_overhead=False)
        ).run(constant_application, MultiCoreRLGovernor())
        assert without_overhead.total_overhead_s == 0.0

    def test_energy_bookkeeping_consistent_with_cluster_meter(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        result = engine.run(constant_application, OndemandGovernor())
        assert result.total_energy_j == pytest.approx(a15_cluster.total_energy_j, rel=1e-6)

    def test_reset_between_runs_gives_reproducible_results(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        first = engine.run(constant_application, OndemandGovernor())
        second = engine.run(constant_application, OndemandGovernor())
        assert first.total_energy_j == pytest.approx(second.total_energy_j)
        assert first.frame_times_s == pytest.approx(second.frame_times_s)

    def test_empty_application_rejected(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        with pytest.raises(Exception):
            engine.run(constant_application.truncated(0), PerformanceGovernor())


class TestSimulationResult:
    def _result(self):
        records = [
            FrameRecord(
                index=i,
                operating_index=5,
                frequency_mhz=700.0,
                cycles_per_core=(1e7,) * 4,
                busy_time_s=0.030 + 0.005 * (i % 3),
                overhead_time_s=0.001,
                frame_time_s=0.031 + 0.005 * (i % 3),
                interval_s=0.040,
                deadline_s=0.040,
                energy_j=0.05,
                average_power_w=1.25,
                measured_power_w=1.25,
                temperature_c=50.0,
                explored=i < 3,
            )
            for i in range(9)
        ]
        return SimulationResult(
            governor_name="test",
            application_name="app",
            reference_time_s=0.040,
            records=records,
        )

    def test_totals_and_normalisation(self):
        result = self._result()
        assert result.total_energy_j == pytest.approx(9 * 0.05)
        assert result.total_time_s == pytest.approx(9 * 0.040)
        assert result.average_power_w == pytest.approx(0.05 / 0.040)
        assert 0.8 < result.normalized_performance < 1.0
        assert result.deadline_miss_ratio == pytest.approx(3 / 9)

    def test_normalized_energy_requires_positive_oracle(self):
        result = self._result()
        oracle = SimulationResult("oracle", "app", 0.040, records=[])
        with pytest.raises(SimulationError):
            result.normalized_energy(oracle)

    def test_window_slicing(self):
        result = self._result()
        head = result.window(0, 3)
        assert head.num_frames == 3
        tail = result.window(6)
        assert tail.num_frames == 3
        assert head.governor_name == result.governor_name

    def test_energy_account_export(self):
        account = self._result().energy_account()
        assert account.total_energy_j == pytest.approx(0.45)
        assert account.reference_time_s == pytest.approx(0.040)

    def test_invalid_reference_time_rejected(self):
        with pytest.raises(SimulationError):
            SimulationResult("x", "y", 0.0)


class TestMetrics:
    def test_summary_over_real_run(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        result = engine.run(constant_application, OndemandGovernor())
        summary = summarize_records(result.records)
        assert summary.num_frames == constant_application.num_frames
        assert summary.total_energy_j == pytest.approx(result.total_energy_j)
        assert summary.average_power_w == pytest.approx(result.average_power_w)
        assert 0.0 <= summary.deadline_miss_ratio <= 1.0
        assert summary.dvfs_changes >= 0

    def test_summary_of_empty_records(self):
        summary = summarize_records([])
        assert summary.num_frames == 0
        assert summary.total_energy_j == 0.0

    def test_frequency_histogram_counts_frames(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        result = engine.run(constant_application, PerformanceGovernor())
        histogram = frequency_histogram(result.records)
        assert sum(histogram.values()) == result.num_frames
        assert set(histogram) == {2000.0}

    def test_energy_by_phase_partitions_total(self, a15_cluster, constant_application):
        engine = SimulationEngine(a15_cluster)
        result = engine.run(constant_application, OndemandGovernor())
        split = energy_by_phase(result.records, boundary_frame=10)
        assert split["before"] + split["after"] == pytest.approx(result.total_energy_j)


class TestRunnerAndComparison:
    def test_run_with_oracle_adds_oracle_run(self, constant_application):
        runner = ExperimentRunner()
        results = runner.run_with_oracle(constant_application, {"ondemand": OndemandGovernor})
        assert set(results) == {"ondemand", "oracle"}

    def test_compare_to_oracle_rows(self, constant_application):
        runner = ExperimentRunner()
        results = runner.run_with_oracle(
            constant_application,
            {"ondemand": OndemandGovernor, "performance": PerformanceGovernor},
        )
        rows = compare_to_oracle(results, display_names={"ondemand": "Linux Ondemand [5]"})
        names = {row.methodology for row in rows}
        assert "Linux Ondemand [5]" in names
        assert "oracle" not in names
        assert all(row.normalized_energy > 0 for row in rows)

    def test_compare_requires_oracle_key(self, constant_application):
        runner = ExperimentRunner()
        results = runner.run_many(constant_application, {"ondemand": OndemandGovernor})
        with pytest.raises(SimulationError):
            compare_to_oracle(results)

    def test_pairwise_energy_saving(self, constant_application):
        runner = ExperimentRunner()
        results = runner.run_many(
            constant_application,
            {"performance": PerformanceGovernor, "oracle": OracleGovernor},
        )
        saving = pairwise_energy_saving(results, candidate_key="oracle", baseline_key="performance")
        assert saving > 0.0
        with pytest.raises(SimulationError):
            pairwise_energy_saving(results, "missing", "performance")

    def test_run_many_requires_factories(self, constant_application):
        with pytest.raises(SimulationError):
            ExperimentRunner().run_many(constant_application, {})

    def test_sweep_runs_each_application(self, constant_application, short_fft_application):
        runner = ExperimentRunner()
        results = runner.sweep([constant_application, short_fft_application], OndemandGovernor)
        assert len(results) == 2
        assert results[0].application_name == constant_application.name
        assert results[1].application_name == short_fft_application.name
