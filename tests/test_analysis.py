"""Unit tests for the statistics and reporting helpers."""

import pytest

from repro.analysis.reporting import format_comparison_rows, format_table
from repro.analysis.stats import (
    coefficient_of_variation,
    mean,
    misprediction_percent,
    percentile,
    population_std,
    windowed_mean,
)
from repro.sim.comparison import ComparisonRow


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_population_std(self):
        assert population_std([2.0, 2.0, 2.0]) == 0.0
        assert population_std([1.0, 3.0]) == pytest.approx(1.0)
        assert population_std([5.0]) == 0.0

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 25) == pytest.approx(2.0)
        assert percentile([7.0], 90) == 7.0

    def test_percentile_invalid_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 120)

    def test_windowed_mean(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert windowed_mean(values, 2) == pytest.approx([1.0, 1.5, 2.5, 3.5])
        assert windowed_mean(values, 10) == pytest.approx([1.0, 1.5, 2.0, 2.5])
        with pytest.raises(ValueError):
            windowed_mean(values, 0)

    def test_misprediction_percent(self):
        assert misprediction_percent([90.0, 110.0], [100.0, 100.0]) == pytest.approx(10.0)
        assert misprediction_percent([], []) == 0.0
        assert misprediction_percent([5.0], [0.0]) == 0.0
        with pytest.raises(ValueError):
            misprediction_percent([1.0], [1.0, 2.0])


class TestReporting:
    def test_format_table_contains_headers_and_cells(self):
        text = format_table(["name", "value"], [("alpha", 1), ("beta", 22)], title="Demo")
        assert "Demo" in text
        assert "| name " in text
        assert "alpha" in text and "22" in text
        # Every row renders with the same width.
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len({len(line) for line in lines}) == 1

    def test_format_table_handles_wide_cells(self):
        text = format_table(["x"], [("a-very-long-cell-value",)])
        assert "a-very-long-cell-value" in text

    def test_format_comparison_rows(self):
        rows = [
            ComparisonRow(
                methodology="Proposed",
                normalized_energy=1.11,
                normalized_performance=0.96,
                total_energy_j=100.0,
                average_power_w=2.0,
                deadline_miss_ratio=0.05,
            )
        ]
        text = format_comparison_rows(rows, title="Table I")
        assert "Proposed" in text
        assert "1.11" in text
        assert "0.96" in text
