"""Bit-identity, negotiation and routing tests for the compiled JIT backend.

numba is *not* required here: the kernels in :mod:`repro.sim.jitpath` are
plain Python functions that numba compiles when importable, so with
:data:`repro._compat.HAVE_NUMBA` monkeypatched True they execute in
interpreted mode through exactly the statements the compiled path runs.
That makes the bit-identity contract testable on any box; the CI ``jit``
job additionally proves the compiled mode (same kernels, numba-compiled)
against the parity goldens.

Covers:

* exact equality — trajectories, per-frame floats, exploration sets,
  Q-tables, visit counts, RNG stream position, transitions, cluster and
  sensor state — against ``tablepath``/``thermalpath``/``batchpath`` for
  every supported governor family x {isothermal, thermal} x RL seeds;
* ``jitpath.run_batch`` == per-member engine runs, and a jitpath-pinned
  sharded + batched campaign == the unsharded singleton campaign;
* negotiation: ``auto`` prefers jitpath exactly when it is available and
  the request is kernel-supported, falls through to the pre-PR selection
  otherwise (numba absent, ``REPRO_DISABLE_JIT``, governor subclasses,
  noisy sensors, bucketed thermal), and a pinned ``jitpath`` mismatch is a
  clear :class:`~repro.errors.SimulationError`;
* the parity harness sees jitpath through ``trace_capture_backends`` as
  soon as it is available — no harness edits.
"""

from __future__ import annotations

import pytest

numpy = pytest.importorskip("numpy")

from repro import _compat
from repro.campaign import CampaignResult, CampaignSpec, FactorySpec, run_campaign
from repro.campaign.executor import plan_batches, run_scenario_batch
from repro.errors import SimulationError
from repro.governors.conservative import ConservativeGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.shen_rl import ShenRLGovernor
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm.governor import PlatformInfo
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig
from repro.sim import backends, batchpath, jitpath
from repro.sim.backends import EngineRequest
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workload.video import mpeg4_application

FRAMES = 240

#: Every FrameColumns field, compared with ``==`` (never approx): the
#: compiled path's contract is bit-identity, not tolerance.
COLUMN_FIELDS = (
    "index",
    "operating_index",
    "frequency_mhz",
    "cycles_per_core",
    "busy_time_s",
    "overhead_time_s",
    "frame_time_s",
    "interval_s",
    "deadline_s",
    "energy_j",
    "average_power_w",
    "measured_power_w",
    "temperature_c",
    "explored",
)

GOVERNOR_FACTORIES = {
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "rl-seed0": lambda: RLGovernor(RLGovernorConfig(seed=0)),
    "rl-seed1": lambda: RLGovernor(RLGovernorConfig(seed=1)),
    "rl-seed2": lambda: RLGovernor(RLGovernorConfig(seed=2)),
}


@pytest.fixture
def jit_on(monkeypatch):
    """Make jitpath negotiable (interpreted kernels when numba is absent)."""
    monkeypatch.setattr(_compat, "HAVE_NUMBA", True)
    monkeypatch.delenv("REPRO_DISABLE_JIT", raising=False)


@pytest.fixture
def jit_off(monkeypatch):
    monkeypatch.setattr(_compat, "HAVE_NUMBA", False)
    monkeypatch.delenv("REPRO_DISABLE_JIT", raising=False)


def _run_engine(engine_name, factory, thermal, num_frames=FRAMES):
    application = mpeg4_application(num_frames=num_frames, seed=5)
    cluster = build_a15_cluster(enable_thermal=thermal)
    governor = factory()
    engine = SimulationEngine(cluster, SimulationConfig(), engine=engine_name)
    result = engine.run(application, governor)
    assert result.engine_used == engine_name
    return result, governor, cluster


def _assert_identical(reference, jit):
    ref_result, ref_governor, ref_cluster = reference
    jit_result, jit_governor, jit_cluster = jit
    for field in COLUMN_FIELDS:
        assert getattr(jit_result.columns, field) == getattr(
            ref_result.columns, field
        ), field
    assert jit_result.exploration_count == ref_result.exploration_count
    assert jit_result.converged_epoch == ref_result.converged_epoch
    assert jit_cluster.dvfs.transitions == ref_cluster.dvfs.transitions
    assert jit_cluster.time_s == ref_cluster.time_s
    assert jit_cluster.total_energy_j == ref_cluster.total_energy_j
    assert jit_cluster.current_index == ref_cluster.current_index
    assert (
        jit_cluster.thermal_model.temperature_c
        == ref_cluster.thermal_model.temperature_c
    )
    ref_sensor, jit_sensor = ref_cluster.power_sensor, jit_cluster.power_sensor
    assert jit_sensor._last_time_s == ref_sensor._last_time_s
    assert jit_sensor._last_power_w == ref_sensor._last_power_w
    assert jit_governor.decision_state() == ref_governor.decision_state()
    if isinstance(ref_governor, RLGovernor):
        ref_agent, jit_agent = ref_governor.agent, jit_governor.agent
        assert jit_agent.qtable._values == ref_agent.qtable._values
        assert jit_agent.qtable._visit_counts == ref_agent.qtable._visit_counts
        assert jit_agent._rng.getstate() == ref_agent._rng.getstate()
        assert (
            jit_agent.epsilon_schedule._epsilon
            == ref_agent.epsilon_schedule._epsilon
        )
        assert jit_governor.reward_history == ref_governor.reward_history


class TestBitIdentity:
    @pytest.mark.parametrize("thermal", [False, True], ids=["iso", "thermal"])
    @pytest.mark.parametrize("name", sorted(GOVERNOR_FACTORIES))
    def test_matches_table_engines_exactly(self, jit_on, name, thermal):
        factory = GOVERNOR_FACTORIES[name]
        reference_engine = "thermalpath" if thermal else "tablepath"
        reference = _run_engine(reference_engine, factory, thermal)
        jit = _run_engine("jitpath", factory, thermal)
        _assert_identical(reference, jit)

    @pytest.mark.parametrize("thermal", [False, True], ids=["iso", "thermal"])
    def test_matches_batchpath_exactly(self, jit_on, thermal):
        application = mpeg4_application(num_frames=FRAMES, seed=5)
        factories = [
            OndemandGovernor,
            ConservativeGovernor,
            lambda: RLGovernor(RLGovernorConfig(seed=0)),
            lambda: RLGovernor(RLGovernorConfig(seed=1)),
        ]
        config = SimulationConfig()

        def members():
            return [
                (build_a15_cluster(enable_thermal=thermal), factory())
                for factory in factories
            ]

        batch_results = batchpath.run_batch(members(), application, config)
        jit_results = jitpath.run_batch(members(), application, config)
        assert len(batch_results) == len(jit_results)
        for batched, jit in zip(batch_results, jit_results):
            for field in COLUMN_FIELDS:
                assert getattr(jit.columns, field) == getattr(
                    batched.columns, field
                ), field
            assert jit.exploration_count == batched.exploration_count
            assert jit.converged_epoch == batched.converged_epoch

    def test_run_batch_matches_per_member_runs(self, jit_on):
        application = mpeg4_application(num_frames=FRAMES, seed=5)
        config = SimulationConfig()
        factories = [OndemandGovernor, lambda: RLGovernor(RLGovernorConfig(seed=2))]
        members = [(build_a15_cluster(), factory()) for factory in factories]
        batch_results = jitpath.run_batch(members, application, config)
        for factory, batched in zip(factories, batch_results):
            single, _, _ = _run_engine("jitpath", factory, thermal=False)
            for field in COLUMN_FIELDS:
                assert getattr(batched.columns, field) == getattr(
                    single.columns, field
                ), field


def _jit_campaign():
    return CampaignSpec.from_grid(
        "jit-shards",
        applications=[FactorySpec.of("mpeg4", num_frames=120)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "conservative": FactorySpec.of("conservative"),
            "rl": FactorySpec.of("proposed-single"),
        },
        seeds=(1, 2),
        engine="jitpath",
    )


class TestCampaignRouting:
    def test_sharded_batched_campaign_merges_to_unsharded(self, jit_on):
        campaign = _jit_campaign()
        unsharded = run_campaign(campaign)
        assert all(
            outcome.result.engine_used == "jitpath"
            for outcome in unsharded.outcomes.values()
        )
        shards = [
            run_campaign(campaign.shard(i, 2), batch_size=4) for i in range(2)
        ]
        merged = CampaignResult.merge(shards).ordered_for(campaign)
        assert merged.to_json() == unsharded.to_json()

    def test_planner_separates_jitpath_groups(self, jit_on):
        pinned = _jit_campaign().scenarios
        auto = CampaignSpec.from_grid(
            "auto",
            applications=[FactorySpec.of("mpeg4", num_frames=120)],
            governors={"ondemand": FactorySpec.of("ondemand")},
            seeds=(1, 2),
        ).scenarios
        units = plan_batches(list(pinned) + list(auto), batch_size=16)
        batched_units = [members for is_batch, members in units if is_batch]
        # Grouping also splits by application seed; what matters here is
        # that no group mixes jitpath-pinned and auto scenarios.
        for members in batched_units:
            assert len({scenario.engine for _, scenario in members}) == 1
        engines = sorted(members[0][1].engine for members in batched_units)
        assert engines == ["auto", "auto", "jitpath", "jitpath"]

    def test_batch_dispatch_stamps_jitpath(self, jit_on):
        scenarios = [s for s in _jit_campaign().scenarios if s.seed == 1][:2]
        outcomes = run_scenario_batch(scenarios)
        assert [outcome.result.engine_used for outcome in outcomes] == [
            "jitpath",
            "jitpath",
        ]

    def test_planner_leaves_jitpath_pins_alone_without_numba(self, jit_off):
        units = plan_batches(list(_jit_campaign().scenarios), batch_size=16)
        assert all(not is_batch for is_batch, _ in units)


def _request(governor=None, cluster=None):
    cluster = cluster or build_a15_cluster()
    application = mpeg4_application(num_frames=10, seed=1)
    governor = governor or OndemandGovernor()
    governor.setup(
        PlatformInfo(num_cores=cluster.num_cores, vf_table=cluster.vf_table),
        application.requirement,
    )
    return EngineRequest(
        cluster=cluster,
        application=application,
        governor=governor,
        config=SimulationConfig(),
    )


class TestNegotiation:
    def test_auto_prefers_jitpath_when_available(self, jit_on):
        assert backends.negotiate(_request()).name == "jitpath"
        assert (
            backends.negotiate(
                _request(RLGovernor(), build_a15_cluster(enable_thermal=True))
            ).name
            == "jitpath"
        )

    def test_unsupported_requests_fall_through(self, jit_on):
        # Subclasses may override hooks the kernel inlines.
        assert backends.negotiate(_request(ShenRLGovernor())).name == "tablepath"
        # Gaussian sensor noise cannot be replicated in-kernel.
        assert (
            backends.negotiate(
                _request(cluster=build_a15_cluster(sensor_noise_w=0.01))
            ).name
            == "tablepath"
        )
        # Bucketed thermal power caching keeps a lazily-filled slice table.
        assert (
            backends.negotiate(
                _request(
                    cluster=build_a15_cluster(
                        enable_thermal=True, power_cache_bucket_c=0.5
                    )
                )
            ).name
            == "thermalpath"
        )

    def test_without_numba_selection_is_pre_pr(self, jit_off):
        assert backends.negotiate(_request()).name == "tablepath"
        assert (
            backends.negotiate(
                _request(cluster=build_a15_cluster(enable_thermal=True))
            ).name
            == "thermalpath"
        )

    def test_without_numba_pin_is_clear_error(self, jit_off):
        with pytest.raises(SimulationError, match="numba"):
            backends.negotiate(_request(), engine="jitpath")

    def test_kill_switch_disables_negotiation(self, jit_on, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_JIT", "1")
        assert not jitpath.available()
        assert backends.negotiate(_request()).name == "tablepath"
        with pytest.raises(SimulationError, match="REPRO_DISABLE_JIT"):
            backends.negotiate(_request(), engine="jitpath")

    def test_kill_switch_zero_means_enabled(self, jit_on, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_JIT", "0")
        assert jitpath.available()

    def test_parity_matrix_gains_jitpath_when_available(self, jit_on):
        names = [entry.name for entry in backends.trace_capture_backends(_request())]
        assert "jitpath" in names
        assert names.index("jitpath") < names.index("tablepath")

    def test_parity_matrix_without_numba_is_pre_pr(self, jit_off):
        names = [entry.name for entry in backends.trace_capture_backends(_request())]
        assert "jitpath" not in names
        assert names == ["tablepath", "thermalpath", "scalar", "batchpath"]


class TestUnsupportedReason:
    def test_rejects_instance_overridden_overhead(self, jit_on):
        governor = OndemandGovernor()
        governor.processing_overhead_s = 0.25
        reason = jitpath.unsupported_reason(build_a15_cluster(), governor)
        assert reason is not None and "processing_overhead_s" in reason

    def test_rejects_recording_sensors(self, jit_on):
        cluster = build_a15_cluster(record_history=True)
        reason = jitpath.unsupported_reason(cluster, OndemandGovernor())
        assert reason is not None and "history" in reason

    def test_accepts_paper_defaults(self, jit_on):
        assert jitpath.unsupported_reason(build_a15_cluster(), RLGovernor()) is None

    def test_simulate_rejects_unsupported(self, jit_on):
        cluster = build_a15_cluster(sensor_noise_w=0.01)
        application = mpeg4_application(num_frames=10, seed=1)
        governor = OndemandGovernor()
        cluster.reset(0)
        governor.setup(
            PlatformInfo(num_cores=cluster.num_cores, vf_table=cluster.vf_table),
            application.requirement,
        )
        with pytest.raises(SimulationError, match="noise"):
            jitpath.simulate_closed_loop(
                cluster, application, governor, SimulationConfig()
            )
