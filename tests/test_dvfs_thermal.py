"""Unit tests for the DVFS actuator and the RC thermal model."""

import pytest

from repro.errors import ConfigurationError, InvalidOperatingPointError
from repro.platform.dvfs import DVFSActuator
from repro.platform.thermal import ThermalModel, ThermalParameters


class TestDVFSActuator:
    def test_starts_at_fastest_point_by_default(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table)
        assert actuator.current_index == len(small_vf_table) - 1

    def test_explicit_initial_index(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table, initial_index=1)
        assert actuator.current_point.frequency_hz == pytest.approx(1000e6)

    def test_invalid_initial_index_rejected(self, small_vf_table):
        with pytest.raises(InvalidOperatingPointError):
            DVFSActuator(table=small_vf_table, initial_index=9)

    def test_transition_is_recorded_with_costs(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table, transition_latency_s=1e-4,
                                transition_energy_j=2e-4)
        transition = actuator.request(0, timestamp_s=1.0)
        assert transition.from_index == 3
        assert transition.to_index == 0
        assert transition.latency_s == pytest.approx(1e-4)
        assert transition.energy_j == pytest.approx(2e-4)
        assert not transition.is_upscale
        assert actuator.transition_count == 1

    def test_same_point_request_is_free_and_unrecorded(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table)
        current = actuator.current_index
        transition = actuator.request(current)
        assert transition.latency_s == 0.0
        assert transition.energy_j == 0.0
        assert actuator.transition_count == 0

    def test_out_of_range_request_rejected(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table)
        with pytest.raises(InvalidOperatingPointError):
            actuator.request(17)

    def test_request_frequency_rounds_up(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table)
        actuator.request_frequency(1200e6)
        assert actuator.current_point.frequency_hz == pytest.approx(1500e6)

    def test_cumulative_costs(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table, transition_latency_s=1e-4,
                                transition_energy_j=1e-4)
        actuator.request(0)
        actuator.request(2)
        actuator.request(1)
        assert actuator.total_transition_time_s == pytest.approx(3e-4)
        assert actuator.total_transition_energy_j == pytest.approx(3e-4)

    def test_reset_clears_history(self, small_vf_table):
        actuator = DVFSActuator(table=small_vf_table)
        actuator.request(0)
        actuator.reset(index=2)
        assert actuator.transition_count == 0
        assert actuator.current_index == 2

    def test_negative_costs_rejected(self, small_vf_table):
        with pytest.raises(ConfigurationError):
            DVFSActuator(table=small_vf_table, transition_latency_s=-1.0)


class TestThermalModel:
    def test_starts_at_initial_temperature(self):
        model = ThermalModel()
        assert model.temperature_c == pytest.approx(model.parameters.initial_c)

    def test_heats_towards_steady_state(self):
        model = ThermalModel(parameters=ThermalParameters(initial_c=40.0))
        steady = model.steady_state_c(5.0)
        for _ in range(200):
            model.step(power_w=5.0, duration_s=1.0)
        assert model.temperature_c == pytest.approx(steady, abs=0.5)
        assert model.temperature_c > 40.0

    def test_cools_when_power_removed(self):
        model = ThermalModel()
        for _ in range(50):
            model.step(5.0, 1.0)
        hot = model.temperature_c
        for _ in range(500):
            model.step(0.0, 1.0)
        assert model.temperature_c < hot
        assert model.temperature_c == pytest.approx(model.parameters.ambient_c, abs=0.5)

    def test_temperature_never_exceeds_steady_state_when_heating_from_below(self):
        model = ThermalModel(parameters=ThermalParameters(initial_c=35.0))
        steady = model.steady_state_c(3.0)
        for _ in range(1000):
            temperature = model.step(3.0, 0.5)
            assert temperature <= steady + 1e-9

    def test_disabled_model_holds_temperature(self):
        model = ThermalModel(enabled=False)
        initial = model.temperature_c
        model.step(10.0, 100.0)
        assert model.temperature_c == initial

    def test_throttle_flag(self):
        model = ThermalModel(parameters=ThermalParameters(initial_c=96.0, throttle_c=95.0))
        assert model.is_throttling

    def test_invalid_inputs_rejected(self):
        model = ThermalModel()
        with pytest.raises(ValueError):
            model.step(-1.0, 1.0)
        with pytest.raises(ValueError):
            model.step(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            ThermalParameters(resistance_c_per_w=0.0)
        with pytest.raises(ConfigurationError):
            ThermalParameters(initial_c=10.0, ambient_c=30.0)

    def test_reset(self):
        model = ThermalModel()
        model.step(5.0, 10.0)
        model.reset()
        assert model.temperature_c == pytest.approx(model.parameters.initial_c)
