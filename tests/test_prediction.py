"""Unit tests for the workload predictors (EWMA eq. 1, last-value, NLMS)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.rtm.prediction import (
    EWMAPredictor,
    LastValuePredictor,
    NLMSPredictor,
    PredictionRecord,
    summarize_mispredictions,
)


class TestEWMAPredictor:
    def test_matches_equation_1(self):
        """CC_{i+1} = gamma * actual_i + (1 - gamma) * pred_i."""
        gamma = 0.6
        predictor = EWMAPredictor(gamma=gamma)
        first = predictor.observe(100.0)
        assert first == pytest.approx(100.0)  # seeded with the first observation
        second = predictor.observe(200.0)
        assert second == pytest.approx(gamma * 200.0 + (1 - gamma) * 100.0)
        third = predictor.observe(150.0)
        assert third == pytest.approx(gamma * 150.0 + (1 - gamma) * second)

    def test_converges_to_constant_input(self):
        predictor = EWMAPredictor(gamma=0.6)
        for _ in range(50):
            prediction = predictor.observe(1e7)
        assert prediction == pytest.approx(1e7)
        assert predictor.misprediction_stats().mean_percent == pytest.approx(0.0)

    def test_tracks_step_change_with_lag(self):
        predictor = EWMAPredictor(gamma=0.6)
        for _ in range(20):
            predictor.observe(1e7)
        predictor.observe(2e7)
        after_step = predictor.last_prediction
        assert 1e7 < after_step < 2e7
        for _ in range(20):
            predictor.observe(2e7)
        assert predictor.last_prediction == pytest.approx(2e7, rel=1e-3)

    def test_gamma_bounds(self):
        with pytest.raises(ConfigurationError):
            EWMAPredictor(gamma=0.0)
        with pytest.raises(ConfigurationError):
            EWMAPredictor(gamma=1.5)
        # gamma = 1 degenerates to last-value prediction.
        predictor = EWMAPredictor(gamma=1.0)
        predictor.observe(5.0)
        assert predictor.observe(9.0) == pytest.approx(9.0)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            EWMAPredictor().observe(-1.0)

    def test_reset(self):
        predictor = EWMAPredictor()
        predictor.observe(1.0)
        predictor.observe(2.0)
        predictor.reset()
        assert predictor.last_prediction is None
        assert predictor.records == []


class TestLastValuePredictor:
    def test_predicts_previous_observation(self):
        predictor = LastValuePredictor()
        assert predictor.observe(3.0) == 3.0
        assert predictor.observe(7.0) == 7.0
        records = predictor.records
        assert records[0].predicted == 3.0
        assert records[0].actual == 7.0


class TestNLMSPredictor:
    def test_converges_on_stationary_signal(self):
        rng = random.Random(0)
        predictor = NLMSPredictor(order=4, step_size=0.5)
        for _ in range(300):
            predictor.observe(1e7 * (1.0 + 0.01 * rng.gauss(0, 1)))
        assert predictor.misprediction_stats(200).mean_percent < 5.0

    def test_lags_on_abrupt_changes_more_than_ewma(self):
        """The paper's argument: adaptive filters lag on dynamic workloads."""

        def signal(i):
            return 2e7 if (i // 25) % 2 else 1e7  # square wave with period 50

        nlms = NLMSPredictor(order=4, step_size=0.5)
        ewma = EWMAPredictor(gamma=0.6)
        for i in range(400):
            nlms.observe(signal(i))
            ewma.observe(signal(i))
        assert ewma.misprediction_stats(100).mean_absolute_relative_error <= \
            nlms.misprediction_stats(100).mean_absolute_relative_error * 1.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NLMSPredictor(order=0)
        with pytest.raises(ConfigurationError):
            NLMSPredictor(step_size=2.5)


class TestMispredictionStats:
    def test_record_properties(self):
        record = PredictionRecord(epoch_index=3, predicted=80.0, actual=100.0)
        assert record.error == pytest.approx(20.0)
        assert record.absolute_relative_error == pytest.approx(0.2)
        assert record.is_underprediction

    def test_zero_actual_error_is_zero(self):
        record = PredictionRecord(0, predicted=5.0, actual=0.0)
        assert record.absolute_relative_error == 0.0

    def test_summary(self):
        records = [
            PredictionRecord(0, 90.0, 100.0),
            PredictionRecord(1, 110.0, 100.0),
        ]
        stats = summarize_mispredictions(records)
        assert stats.num_epochs == 2
        assert stats.mean_percent == pytest.approx(10.0)
        assert stats.underprediction_fraction == pytest.approx(0.5)

    def test_empty_summary(self):
        stats = summarize_mispredictions([])
        assert stats.num_epochs == 0
        assert stats.mean_percent == 0.0

    def test_windowed_stats(self):
        predictor = EWMAPredictor(gamma=0.6)
        values = [1e7] * 10 + [2e7] * 10
        for value in values:
            predictor.observe(value)
        early = predictor.misprediction_stats(0, 10)
        late = predictor.misprediction_stats(15, None)
        assert early.num_epochs <= 10
        assert late.mean_absolute_relative_error < 0.05
