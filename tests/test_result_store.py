"""Tests for the columnar on-disk result store (``repro.campaign.store``).

Covers the PR-10 tentpole surface: format negotiation (with the
``REPRO_DISABLE_ARROW`` kill-switch), store/load round-trip parity with
the legacy JSON blob (eager and lazy), O(1) append-only checkpointing
(byte-prefix stability across appends), torn-file salvage + quarantine,
the streaming shard merge (sharded + merged == unsharded in every
format combination), the executor/service integration, and the CLI's
``--store`` flag.

The Arrow encoding is exercised only when pyarrow is importable — on a
pyarrow-less install every test runs against the pure-JSON ``jsonl``
encoding, which shares all machinery except the byte encoding.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    Coordinator,
    FactorySpec,
    ScenarioOutcome,
    ScenarioSpec,
    run_campaign,
)
from repro.campaign import store as result_store
from repro.campaign.cli import main as cli_main
from repro.errors import ConfigurationError, SimulationError

#: Small scale so the whole module stays fast.
FRAMES = 40

#: Concrete encodings testable in this interpreter.
ENCODINGS = [result_store.ENCODING_JSONL] + (
    [result_store.ENCODING_ARROW] if result_store.arrow_available() else []
)


def small_campaign(name="store", seeds=(1, 2)):
    return CampaignSpec.from_grid(
        name,
        applications=[FactorySpec.of("mpeg4", num_frames=FRAMES)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "oracle": FactorySpec.of("oracle"),
        },
        seeds=seeds,
    )


def broken_scenario(label="broken"):
    return ScenarioSpec(
        label=label,
        application=FactorySpec.of("mpeg4", num_frames=FRAMES),
        governor=FactorySpec.of("no-such-governor"),
    )


@pytest.fixture(scope="module")
def campaign():
    return small_campaign()


@pytest.fixture(scope="module")
def full_store(campaign):
    return run_campaign(campaign, store="json")


@pytest.fixture(scope="module")
def mixed_store(campaign):
    """A store with both done and failed outcomes (null frames on disk)."""
    spec = CampaignSpec(
        name="store-mixed", scenarios=campaign.scenarios[:2] + (broken_scenario(),)
    )
    return run_campaign(spec, store="json")


class TestNegotiation:
    def test_json_is_always_legacy(self):
        assert result_store.negotiate_store("json") == result_store.STORE_JSON

    def test_arrow_degrades_to_jsonl_without_pyarrow(self):
        resolved = result_store.negotiate_store("arrow")
        if result_store.arrow_available():
            assert resolved == result_store.ENCODING_ARROW
        else:
            assert resolved == result_store.ENCODING_JSONL

    def test_auto_prefers_arrow_else_legacy_json(self):
        resolved = result_store.negotiate_store("auto")
        if result_store.arrow_available():
            assert resolved == result_store.ENCODING_ARROW
        else:
            assert resolved == result_store.STORE_JSON

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown result store"):
            result_store.negotiate_store("parquet")

    def test_kill_switch_disables_arrow(self, monkeypatch):
        # Simulate a pyarrow install with the kill-switch thrown: the
        # writer must degrade exactly like a pyarrow-less install.
        monkeypatch.setattr(result_store, "HAVE_PYARROW", True)
        monkeypatch.setenv("REPRO_DISABLE_ARROW", "1")
        assert not result_store.arrow_available()
        assert result_store.negotiate_store("auto") == result_store.STORE_JSON
        assert result_store.negotiate_store("arrow") == result_store.ENCODING_JSONL

    def test_kill_switch_off_values(self, monkeypatch):
        monkeypatch.setattr(result_store, "HAVE_PYARROW", True)
        for value in ("", "0"):
            monkeypatch.setenv("REPRO_DISABLE_ARROW", value)
            assert result_store.arrow_available()


@pytest.mark.parametrize("encoding", ENCODINGS)
class TestRoundTrip:
    def test_to_dict_parity_with_legacy_json(self, tmp_path, full_store, encoding):
        path = str(tmp_path / "results.bin")
        result_store.save_store(full_store, path, encoding)
        assert result_store.is_store_file(path)
        loaded = CampaignResult.load(path)
        assert loaded.to_dict() == full_store.to_dict()

    def test_lazy_load_parity(self, tmp_path, full_store, encoding):
        path = str(tmp_path / "results.bin")
        result_store.save_store(full_store, path, encoding)
        lazy = CampaignResult.load(path, lazy=True)
        assert lazy.to_dict() == full_store.to_dict()

    def test_lazy_metrics_without_touching_frames(
        self, tmp_path, full_store, encoding
    ):
        path = str(tmp_path / "results.bin")
        result_store.save_store(full_store, path, encoding)
        lazy = CampaignResult.load(path, lazy=True)
        # Summaries come from the cached metrics: delete the file and the
        # summary must still answer (frame access would now raise).
        os.unlink(path)
        for outcome, original in zip(lazy, full_store):
            summary = outcome.metrics_summary()
            from repro.sim.metrics import summarize_result

            assert summary == summarize_result(original.result)

    def test_failed_outcomes_round_trip(self, tmp_path, mixed_store, encoding):
        path = str(tmp_path / "mixed.bin")
        result_store.save_store(mixed_store, path, encoding)
        loaded = CampaignResult.load(path)
        assert loaded.to_dict() == mixed_store.to_dict()
        assert [o.label for o in loaded.failed()] == ["broken"]

    def test_save_via_campaign_result(self, tmp_path, full_store, encoding):
        # CampaignResult.save routes "arrow" through the negotiated
        # columnar encoding; "json" stays byte-identical legacy.
        columnar = str(tmp_path / "columnar.bin")
        legacy = str(tmp_path / "legacy.json")
        full_store.save(columnar, store="arrow")
        full_store.save(legacy, store="json")
        assert result_store.is_store_file(columnar)
        assert not result_store.is_store_file(legacy)
        with open(legacy, encoding="utf-8") as handle:
            assert json.load(handle) == full_store.to_dict()
        assert CampaignResult.load(columnar).to_dict() == full_store.to_dict()


@pytest.mark.parametrize("encoding", ENCODINGS)
class TestAppendOnly:
    def test_append_reopen_equals_bulk_save(self, tmp_path, full_store, encoding):
        path = str(tmp_path / "appended.bin")
        outcomes = list(full_store)
        writer = result_store.StoreWriter.create(
            path, full_store.campaign_name, encoding
        )
        writer.append(outcomes[0])
        writer.close()
        # Reopen-and-append survives process restarts mid-campaign.
        with result_store.StoreWriter.open_append(path) as writer:
            for outcome in outcomes[1:]:
                writer.append(outcome)
        assert CampaignResult.load(path).to_dict() == full_store.to_dict()

    def test_appends_are_byte_prefix_stable(self, tmp_path, full_store, encoding):
        # O(1) checkpointing in observable form: appending outcome N+1
        # never rewrites outcomes 0..N (the file grows strictly by
        # suffix), unlike the legacy whole-blob rewrite.
        path = str(tmp_path / "prefix.bin")
        writer = result_store.StoreWriter.create(
            path, full_store.campaign_name, encoding
        )
        snapshots = []
        for outcome in full_store:
            writer.append(outcome)
            writer.flush()
            with open(path, "rb") as handle:
                snapshots.append(handle.read())
        writer.close()
        for earlier, later in zip(snapshots, snapshots[1:]):
            assert later.startswith(earlier)
            assert len(later) > len(earlier)

    def test_reader_reports_campaign_and_encoding(
        self, tmp_path, full_store, encoding
    ):
        path = str(tmp_path / "meta.bin")
        result_store.save_store(full_store, path, encoding)
        reader = result_store.StoreReader(path)
        assert reader.campaign_name == full_store.campaign_name
        assert reader.encoding == encoding


@pytest.mark.parametrize("encoding", ENCODINGS)
class TestCorruption:
    def _saved(self, tmp_path, full_store, encoding):
        path = str(tmp_path / "ckpt.bin")
        result_store.save_store(full_store, path, encoding)
        return path

    def test_truncated_tail_salvages_prefix(self, tmp_path, full_store, encoding):
        path = self._saved(tmp_path, full_store, encoding)
        with open(path, "rb") as handle:
            blob = handle.read()
        # Tear the file mid-way through the last record.
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) - 40])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            salvaged = CampaignResult.load_checkpoint(path)
        assert salvaged is not None
        assert 0 < len(salvaged) < len(full_store)
        # Salvaged outcomes are bit-identical to the originals.
        originals = {o.scenario_id: o for o in full_store}
        for outcome in salvaged:
            assert outcome.to_dict() == originals[outcome.scenario_id].to_dict()
        # The torn file moved aside for post-mortem; a resume starts clean.
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")

    def test_garbled_record_salvages_prefix(self, tmp_path, full_store, encoding):
        path = self._saved(tmp_path, full_store, encoding)
        with open(path, "ab") as handle:
            handle.write(b"\x00garbage that is not a record\xff")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            salvaged = CampaignResult.load_checkpoint(path)
        assert salvaged is not None
        assert salvaged.to_dict() == full_store.to_dict()
        assert os.path.exists(path + ".corrupt")

    def test_corrupt_header_quarantines_with_none(self, tmp_path, encoding):
        path = str(tmp_path / "ckpt.bin")
        with open(path, "wb") as handle:
            handle.write(result_store.MAGIC + b" {not json\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert result_store.load_store_checkpoint(path) is None
        assert os.path.exists(path + ".corrupt")

    def test_missing_file_is_none_without_warning(self, tmp_path, encoding):
        assert result_store.load_store_checkpoint(str(tmp_path / "nope")) is None

    def test_future_version_is_config_error_not_corruption(
        self, tmp_path, full_store, encoding
    ):
        path = self._saved(tmp_path, full_store, encoding)
        with open(path, "rb") as handle:
            header, rest = handle.readline(), handle.read()
        meta = json.loads(header[len(result_store.MAGIC) + 1 :])
        meta["version"] = result_store.FORMAT_VERSION + 1
        with open(path, "wb") as handle:
            handle.write(
                result_store.MAGIC
                + b" "
                + json.dumps(meta, sort_keys=True).encode()
                + b"\n"
                + rest
            )
        # A deliberately newer file must never be quarantined as corrupt.
        with pytest.raises(ConfigurationError, match="format version"):
            CampaignResult.load_checkpoint(path)
        assert os.path.exists(path)

    def test_bad_frame_shape_is_quarantined(self, tmp_path, full_store, encoding):
        # A record whose frame columns disagree in length is corruption,
        # even though every byte parses: FrameColumns validation feeds the
        # same quarantine path as a torn file.
        path = str(tmp_path / "ckpt.bin")
        record = result_store.encode_record(next(iter(full_store)))
        record["result"]["frames"]["energy_j"] = record["result"]["frames"][
            "energy_j"
        ][:-1]
        writer = result_store.StoreWriter.create(
            path, full_store.campaign_name, encoding
        )
        writer.append_records([record])
        writer.close()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            salvaged = result_store.load_store_checkpoint(path)
        assert salvaged is not None and len(salvaged) == 0


class TestStreamingMerge:
    @pytest.fixture()
    def shard_paths(self, tmp_path, campaign):
        paths = []
        for index in range(2):
            shard = run_campaign(campaign.shard(index, 2), store="json")
            path = str(tmp_path / f"shard{index}.bin")
            result_store.save_store(shard, path, result_store.ENCODING_JSONL)
            paths.append(path)
        return paths

    def test_merge_columnar_shards_to_json_is_byte_identical(
        self, tmp_path, campaign, full_store, shard_paths
    ):
        unsharded = str(tmp_path / "unsharded.json")
        full_store.save(unsharded, store="json")
        merged = str(tmp_path / "merged.json")
        stats = result_store.merge_store_files(
            shard_paths, merged, spec=campaign, store="json"
        )
        assert stats == result_store.MergeStats(
            stores=2, scenarios=len(campaign), duplicates=0
        )
        with open(unsharded, "rb") as f_a, open(merged, "rb") as f_b:
            assert f_a.read() == f_b.read()

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_merge_to_columnar_round_trips(
        self, tmp_path, campaign, full_store, shard_paths, encoding
    ):
        merged = str(tmp_path / "merged.bin")
        result_store.merge_store_files(
            shard_paths, merged, spec=campaign, store="arrow"
        )
        assert result_store.is_store_file(merged)
        assert CampaignResult.load(merged).to_dict() == full_store.to_dict()

    def test_merge_mixed_legacy_and_columnar_inputs(
        self, tmp_path, campaign, full_store
    ):
        legacy = str(tmp_path / "shard0.json")
        columnar = str(tmp_path / "shard1.bin")
        run_campaign(campaign.shard(0, 2), store="json").save(legacy)
        result_store.save_store(
            run_campaign(campaign.shard(1, 2), store="json"),
            columnar,
            result_store.ENCODING_JSONL,
        )
        merged = str(tmp_path / "merged.json")
        result_store.merge_store_files(
            [legacy, columnar], merged, spec=campaign, store="json"
        )
        assert CampaignResult.load(merged).to_dict() == full_store.to_dict()

    def test_identical_duplicates_union_silently(
        self, tmp_path, campaign, full_store, shard_paths
    ):
        merged = str(tmp_path / "merged.json")
        stats = result_store.merge_store_files(
            shard_paths + [shard_paths[0]], merged, spec=campaign, store="json"
        )
        assert stats.duplicates == len(
            CampaignResult.load(shard_paths[0])
        )
        assert CampaignResult.load(merged).to_dict() == full_store.to_dict()

    def test_conflicting_duplicates_raise(self, tmp_path, campaign, shard_paths):
        conflicting = CampaignResult(campaign_name=campaign.name)
        conflicting.add(
            ScenarioOutcome.failure(campaign.scenarios[0], error="x", traceback_text="")
        )
        conflict_path = str(tmp_path / "conflict.bin")
        result_store.save_store(
            conflicting, conflict_path, result_store.ENCODING_JSONL
        )
        with pytest.raises(SimulationError, match="conflicting outcomes"):
            result_store.merge_store_files(
                shard_paths + [conflict_path],
                str(tmp_path / "merged.json"),
            )
        # The spill file never outlives the merge, success or failure.
        assert not os.path.exists(str(tmp_path / "merged.json.merge-spill"))

    def test_merge_rejects_different_campaigns(self, tmp_path, shard_paths):
        other = run_campaign(small_campaign(name="other-store", seeds=(1,)))
        other_path = str(tmp_path / "other.bin")
        result_store.save_store(other, other_path, result_store.ENCODING_JSONL)
        with pytest.raises(ConfigurationError, match="different campaigns"):
            result_store.merge_store_files(
                shard_paths + [other_path], str(tmp_path / "merged.json")
            )

    def test_incomplete_merge_with_spec_raises(
        self, tmp_path, campaign, shard_paths
    ):
        with pytest.raises(SimulationError, match="no outcome for scenario"):
            result_store.merge_store_files(
                shard_paths[:1], str(tmp_path / "merged.json"), spec=campaign
            )

    def test_merge_requires_stores(self, tmp_path):
        with pytest.raises(ConfigurationError, match="at least one"):
            result_store.merge_store_files([], str(tmp_path / "merged.json"))


class TestExecutorIntegration:
    def test_columnar_checkpoint_resumes(self, tmp_path, campaign):
        checkpoint = str(tmp_path / "ckpt.bin")
        first = run_campaign(
            campaign, checkpoint_path=checkpoint, checkpoint_every=1, store="arrow"
        )
        assert result_store.is_store_file(checkpoint)
        saved = CampaignResult.load(checkpoint)
        assert saved.to_dict() == first.to_dict()
        # Resuming from the columnar checkpoint re-runs nothing and is
        # bit-identical.
        resumed = run_campaign(campaign, resume=saved, store="arrow")
        assert resumed.to_dict() == first.to_dict()

    def test_torn_columnar_checkpoint_resumes_cleanly(self, tmp_path, campaign):
        checkpoint = str(tmp_path / "ckpt.bin")
        reference = run_campaign(campaign, store="json")
        run_campaign(
            campaign, checkpoint_path=checkpoint, checkpoint_every=1, store="arrow"
        )
        with open(checkpoint, "rb") as handle:
            blob = handle.read()
        with open(checkpoint, "wb") as handle:
            handle.write(blob[:-25])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            salvaged = CampaignResult.load_checkpoint(checkpoint)
        finished = run_campaign(
            campaign,
            resume=salvaged,
            checkpoint_path=checkpoint,
            store="arrow",
        )
        assert finished.to_dict() == reference.to_dict()


class TestServiceIntegration:
    def test_columnar_journal_resumes(self, tmp_path, campaign):
        serial = run_campaign(campaign, store="json")
        journal = str(tmp_path / "journal.json")
        coordinator = Coordinator(
            campaign, journal_path=journal, journal_store="arrow"
        )
        for outcome in list(serial)[:2]:
            coordinator.submit("w0", None, outcome.to_dict())
        coordinator.close_journal()
        # The meta journal is a small pointer; outcomes live in the
        # append-only sidecar store.
        with open(journal, encoding="utf-8") as handle:
            assert json.load(handle)["outcomes"] == "store"
        assert result_store.is_store_file(journal + ".outcomes")
        revived = Coordinator(
            campaign, journal_path=journal, journal_store="arrow"
        )
        assert revived.stats["resumed"] == 2
        assert len(revived.store) == 2
        revived.close_journal()

    def test_columnar_journal_drains_to_serial_result(self, tmp_path, campaign):
        serial = run_campaign(campaign, store="json")
        journal = str(tmp_path / "journal.json")
        coordinator = Coordinator(
            campaign, journal_path=journal, journal_store="arrow"
        )
        for outcome in serial:
            coordinator.submit("w0", None, outcome.to_dict())
        assert coordinator.finished
        assert coordinator.result().to_json() == serial.to_json()
        coordinator.close_journal()
        sidecar = CampaignResult.load(journal + ".outcomes")
        assert sidecar.to_dict()["outcomes"] == serial.to_dict()["outcomes"]


class TestCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        small_campaign(name="store-cli", seeds=(1,)).save(str(path))
        return str(path)

    def test_store_arrow_output_and_checkpoint(self, spec_path, tmp_path):
        output = str(tmp_path / "results.bin")
        checkpoint = str(tmp_path / "ckpt.bin")
        assert (
            cli_main(
                [
                    spec_path,
                    "--quiet",
                    "--store",
                    "arrow",
                    "--output",
                    output,
                    "--checkpoint",
                    checkpoint,
                ]
            )
            == 0
        )
        assert result_store.is_store_file(output)
        assert result_store.is_store_file(checkpoint)
        loaded = CampaignResult.load(output)
        assert CampaignResult.load(checkpoint).to_dict() == loaded.to_dict()
        # Re-running resumes from the columnar checkpoint (nothing re-runs).
        assert (
            cli_main(
                [spec_path, "--quiet", "--store", "arrow", "--checkpoint", checkpoint]
            )
            == 0
        )

    def test_store_json_output_matches_arrow(self, spec_path, tmp_path, capsys):
        json_out = str(tmp_path / "results.json")
        arrow_out = str(tmp_path / "results.bin")
        assert cli_main([spec_path, "--quiet", "--output", json_out]) == 0
        assert (
            cli_main(
                [spec_path, "--quiet", "--store", "arrow", "--output", arrow_out]
            )
            == 0
        )
        assert not result_store.is_store_file(json_out) or result_store.arrow_available()
        assert (
            CampaignResult.load(arrow_out).to_dict()
            == CampaignResult.load(json_out).to_dict()
        )

    def test_shard_merge_with_columnar_shards(self, spec_path, tmp_path):
        spec_file = str(tmp_path / "spec2.json")
        small_campaign(name="store-cli-merge").save(spec_file)
        full = str(tmp_path / "full.json")
        assert cli_main([spec_file, "--quiet", "--output", full]) == 0
        shard_files = []
        for index in range(2):
            out = str(tmp_path / f"shard{index}.bin")
            shard_files.append(out)
            assert (
                cli_main(
                    [
                        spec_file,
                        "--shard",
                        f"{index}/2",
                        "--quiet",
                        "--store",
                        "arrow",
                        "--output",
                        out,
                    ]
                )
                == 0
            )
            assert result_store.is_store_file(out)
        merged = str(tmp_path / "merged.json")
        assert (
            cli_main(
                [
                    "merge",
                    *shard_files,
                    "--spec",
                    spec_file,
                    "--store",
                    "json",
                    "--output",
                    merged,
                    "--quiet",
                ]
            )
            == 0
        )
        with open(full, "rb") as f_full, open(merged, "rb") as f_merged:
            assert f_full.read() == f_merged.read()

    def test_merge_reports_stats_line(self, spec_path, tmp_path, capsys):
        out = str(tmp_path / "r.json")
        assert cli_main([spec_path, "--quiet", "--output", out]) == 0
        merged = str(tmp_path / "merged.json")
        assert cli_main(["merge", out, out, "--output", merged, "--quiet"]) == 0
        printed = capsys.readouterr().out
        assert "merged 2 store(s), 2 scenarios (2 duplicate(s))" in printed

    def test_serve_columnar_journal(self, spec_path, tmp_path):
        # The serve path is exercised end to end elsewhere; here only the
        # journal plumbing: a coordinator built the way _serve_main builds
        # it journals outcomes to the sidecar store.
        journal = str(tmp_path / "journal.json")
        campaign = CampaignSpec.load(spec_path)
        serial = run_campaign(campaign, store="json")
        coordinator = Coordinator(
            campaign, journal_path=journal, journal_store="arrow"
        )
        for outcome in serial:
            coordinator.submit("w0", None, outcome.to_dict())
        coordinator.close_journal()
        assert result_store.is_store_file(journal + ".outcomes")
