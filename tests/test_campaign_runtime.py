"""Tests for the fault-tolerant campaign runtime.

Covers the PR-3 surface: per-scenario status (``done``/``failed`` with
captured error + traceback + attempts), the executor retry policy,
incremental atomic checkpointing with crash-resume bit-equivalence,
deterministic sharding, shard-store merging, and the CLI's ``--shard`` /
``merge`` / interrupt behaviour.
"""

import json
import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.campaign import (
    CampaignExecutor,
    CampaignInterrupted,
    CampaignResult,
    CampaignSpec,
    FactorySpec,
    RetryPolicy,
    ScenarioOutcome,
    ScenarioSpec,
    register_governor,
    run_campaign,
    run_scenario_safely,
)
from repro.campaign.cli import main as cli_main
from repro.analysis.reporting import format_campaign_summary
from repro.errors import ConfigurationError, SimulationError
from repro.governors.performance import PerformanceGovernor

#: Small scale so the whole module stays fast.
FRAMES = 60


def small_campaign(name="runtime", seeds=(1, 2)):
    return CampaignSpec.from_grid(
        name,
        applications=[FactorySpec.of("mpeg4", num_frames=FRAMES)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "oracle": FactorySpec.of("oracle"),
        },
        seeds=seeds,
    )


def broken_scenario(label="broken"):
    """A scenario whose governor factory cannot resolve (fails in any process)."""
    return ScenarioSpec(
        label=label,
        application=FactorySpec.of("mpeg4", num_frames=FRAMES),
        governor=FactorySpec.of("no-such-governor"),
    )


@pytest.fixture(scope="module")
def campaign():
    return small_campaign()


@pytest.fixture(scope="module")
def full_store(campaign):
    return run_campaign(campaign)


#: Module-level counter driving the flaky governor factory below.
_FLAKY_CALLS = {"n": 0}


@register_governor("test-flaky-governor")
def _flaky_governor(fail_times=1):
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] <= fail_times:
        raise RuntimeError(f"flaky failure {_FLAKY_CALLS['n']}")
    return PerformanceGovernor()


@register_governor("test-hanging-governor")
def _hanging_governor(hang_s=10.0):
    time.sleep(hang_s)
    return PerformanceGovernor()


@register_governor("test-kamikaze-governor")
def _kamikaze_governor(sentinel=""):
    # First construction (sentinel file absent) SIGKILLs its own process —
    # the moral equivalent of the OOM killer hitting a pool worker.  Any
    # later construction finds the sentinel and behaves.
    if sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("armed")
        os.kill(os.getpid(), signal.SIGKILL)
    return PerformanceGovernor()


def flaky_campaign(fail_times):
    _FLAKY_CALLS["n"] = 0
    scenario = ScenarioSpec(
        label="flaky",
        application=FactorySpec.of("mpeg4", num_frames=FRAMES),
        governor=FactorySpec.of("test-flaky-governor", fail_times=fail_times),
    )
    return CampaignSpec(name="flaky", scenarios=(scenario,))


class TestScenarioOutcomeStatus:
    def test_failure_round_trips_through_json(self):
        outcome = ScenarioOutcome.failure(
            broken_scenario(),
            error="RuntimeError: boom",
            traceback_text="Traceback...\nRuntimeError: boom\n",
            attempts=3,
        )
        restored = ScenarioOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))
        assert restored == outcome
        assert not restored.ok
        assert restored.status == "failed"
        assert restored.error == "RuntimeError: boom"
        assert "boom" in restored.traceback
        assert restored.attempts == 3
        assert restored.result is None

    def test_legacy_dict_without_status_is_done(self, full_store):
        data = next(iter(full_store)).to_dict()
        del data["status"]
        del data["attempts"]
        restored = ScenarioOutcome.from_dict(data)
        assert restored.ok and restored.status == "done" and restored.attempts == 1

    def test_done_outcome_requires_result(self):
        with pytest.raises(SimulationError):
            ScenarioOutcome(scenario=broken_scenario(), result=None)

    def test_unknown_status_rejected(self, full_store):
        done = next(iter(full_store))
        with pytest.raises(SimulationError):
            ScenarioOutcome(scenario=done.scenario, result=done.result, status="maybe")


class TestFailureRecording:
    def test_factory_error_recorded_not_raised(self):
        outcome = run_scenario_safely(broken_scenario())
        assert outcome.status == "failed"
        assert "no-such-governor" in outcome.error
        assert "Traceback" in outcome.traceback
        assert outcome.attempts == 1

    def test_failing_scenario_does_not_kill_campaign(self, campaign):
        mixed = CampaignSpec(
            name=campaign.name, scenarios=campaign.scenarios + (broken_scenario(),)
        )
        store = CampaignExecutor().run(mixed)
        assert len(store) == len(mixed)
        assert [o.label for o in store.failed()] == ["broken"]
        assert sorted(store.results()) == sorted(campaign.labels)
        with pytest.raises(SimulationError):
            store.raise_on_failures()

    def test_process_backend_records_failure(self, campaign):
        mixed = CampaignSpec(
            name=campaign.name, scenarios=campaign.scenarios + (broken_scenario(),)
        )
        store = CampaignExecutor(backend="process", max_workers=2).run(mixed)
        assert [o.label for o in store.failed()] == ["broken"]

    def test_summary_is_failure_aware(self, campaign):
        mixed = CampaignSpec(
            name=campaign.name, scenarios=campaign.scenarios + (broken_scenario(),)
        )
        summary = format_campaign_summary(CampaignExecutor().run(mixed))
        assert "failed" in summary
        assert "no-such-governor" in summary
        assert f"{len(campaign)} done, 1 failed" in summary


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)

    def test_retry_succeeds_and_stamps_attempts(self):
        store = CampaignExecutor(retry=RetryPolicy(max_attempts=2)).run(flaky_campaign(1))
        outcome = store.outcome("flaky")
        assert outcome.ok
        assert outcome.attempts == 2
        assert _FLAKY_CALLS["n"] == 2

    def test_retries_exhausted_records_last_error(self):
        store = CampaignExecutor(retry=RetryPolicy(max_attempts=3)).run(flaky_campaign(99))
        outcome = store.outcome("flaky")
        assert not outcome.ok
        assert outcome.attempts == 3
        assert outcome.error == "RuntimeError: flaky failure 3"
        assert _FLAKY_CALLS["n"] == 3

    def test_no_retry_by_default(self):
        store = CampaignExecutor().run(flaky_campaign(1))
        assert not store.outcome("flaky").ok
        assert _FLAKY_CALLS["n"] == 1


class TestBackoffSchedule:
    def test_exponential_growth_is_capped(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_s=1.0, backoff_cap_s=4.0, backoff_jitter=0.0
        )
        assert [policy.delay_for(k) for k in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=1.0, backoff_jitter=0.5)
        first = policy.delay_for(1, "scenario-a")
        other = policy.delay_for(1, "scenario-b")
        assert policy.delay_for(1, "scenario-a") == first  # reproducible
        assert first != other  # keys de-synchronise
        assert 0.5 <= first <= 1.5 and 0.5 <= other <= 1.5

    def test_seed_changes_jitter(self):
        base = RetryPolicy(max_attempts=2, backoff_s=1.0)
        reseeded = RetryPolicy(max_attempts=2, backoff_s=1.0, backoff_seed=99)
        assert base.delay_for(1, "x") != reseeded.delay_for(1, "x")

    def test_zero_backoff_means_no_delay(self):
        assert RetryPolicy(max_attempts=3).delay_for(2, "x") == 0.0

    def test_new_fields_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay_for(0)

    def test_legacy_positional_call_still_works(self):
        outcome = run_scenario_safely(broken_scenario(), 1, 0.0)
        assert not outcome.ok and outcome.attempts == 1


class TestScenarioTimeout:
    def hung_scenario(self):
        return ScenarioSpec(
            label="hung",
            application=FactorySpec.of("mpeg4", num_frames=FRAMES),
            governor=FactorySpec.of("test-hanging-governor", hang_s=10.0),
        )

    def test_hung_scenario_becomes_failed_outcome(self):
        started = time.monotonic()
        outcome = run_scenario_safely(
            self.hung_scenario(), retry=RetryPolicy(timeout_s=0.2)
        )
        assert time.monotonic() - started < 5.0  # did not wait the 10 s hang out
        assert not outcome.ok
        assert "ScenarioTimeoutError" in outcome.error
        assert outcome.attempts == 1

    def test_timeout_guard_preserves_result_bits(self, campaign, full_store):
        scenario = campaign.scenarios[0]
        guarded = run_scenario_safely(scenario, retry=RetryPolicy(timeout_s=120.0))
        assert (
            guarded.to_dict()
            == full_store.outcomes[scenario.scenario_id].to_dict()
        )


class TestCheckpointQuarantine:
    def test_corrupt_checkpoint_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{truncated by a crash", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert CampaignResult.load_checkpoint(str(path)) is None
        assert not path.exists()
        assert (tmp_path / "ckpt.json.corrupt").exists()

    def test_quarantine_suffix_increments(self, tmp_path):
        path = tmp_path / "ckpt.json"
        (tmp_path / "ckpt.json.corrupt").write_text("earlier", encoding="utf-8")
        path.write_text("[1, 2, 3]", encoding="utf-8")  # parses, wrong shape
        with pytest.warns(RuntimeWarning):
            assert CampaignResult.load_checkpoint(str(path)) is None
        assert (tmp_path / "ckpt.json.corrupt-2").exists()

    def test_missing_checkpoint_is_none_without_warning(self, tmp_path):
        assert CampaignResult.load_checkpoint(str(tmp_path / "absent.json")) is None

    def test_valid_checkpoint_loads(self, full_store, tmp_path):
        path = tmp_path / "ckpt.json"
        full_store.save(str(path))
        loaded = CampaignResult.load_checkpoint(str(path))
        assert loaded is not None and loaded.to_json() == full_store.to_json()

    def test_cli_quarantines_and_reruns(self, campaign, full_store, tmp_path):
        spec_path = str(tmp_path / "spec.json")
        campaign.save(spec_path)
        checkpoint = tmp_path / "ckpt.json"
        checkpoint.write_text("garbage{", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            rc = cli_main(
                # --batch-size 0 keeps engine_used stamps comparable to the
                # unbatched run_campaign reference store.
                [spec_path, "--quiet", "--batch-size", "0",
                 "--checkpoint", str(checkpoint)]
            )
        assert rc == 0
        assert CampaignResult.load(str(checkpoint)).to_json() == full_store.to_json()
        assert (tmp_path / "ckpt.json.corrupt").exists()


class TestExecutorFaultInjection:
    def test_killed_pool_worker_resume_reruns_failed_not_done(self, tmp_path):
        sentinel = str(tmp_path / "armed")
        victim = ScenarioSpec(
            label="kamikaze",
            application=FactorySpec.of("mpeg4", num_frames=FRAMES),
            governor=FactorySpec.of("test-kamikaze-governor", sentinel=sentinel),
        )
        chaos = CampaignSpec(
            name="chaos", scenarios=small_campaign(name="chaos").scenarios + (victim,)
        )
        path = tmp_path / "ckpt.json"
        with pytest.raises(BrokenProcessPool):
            CampaignExecutor(backend="process", max_workers=2).run(
                chaos, checkpoint_path=str(path), checkpoint_every=1
            )
        # The emergency checkpoint holds only work that really finished;
        # the killed scenario is not in it.
        checkpoint = CampaignResult.load(str(path))
        assert victim.scenario_id not in {
            outcome.scenario_id for outcome in checkpoint if outcome.ok
        }
        pending = [scenario.label for scenario in checkpoint.pending(chaos)]
        executed = []
        resumed = CampaignExecutor().run(
            chaos,
            resume=checkpoint,
            progress=lambda label, done, total: executed.append(label),
            checkpoint_path=str(path),
        )
        # Resume re-ran exactly the failed-not-done set, nothing else.
        assert executed == pending
        assert "kamikaze" in executed
        assert not resumed.failed()
        # The sentinel now exists, so a clean serial run is the reference.
        assert resumed.to_json() == run_campaign(chaos).to_json()

    def test_interrupt_during_checkpoint_write_resumes_cleanly(
        self, campaign, full_store, tmp_path, monkeypatch
    ):
        import repro.campaign.results as results_module

        path = tmp_path / "ckpt.json"
        real_replace = os.replace
        armed = {"yes": True}

        def interrupted_replace(src, dst):
            # Ctrl-C lands exactly inside the first checkpoint publish.
            if armed["yes"] and str(dst) == str(path):
                armed["yes"] = False
                raise KeyboardInterrupt
            return real_replace(src, dst)

        monkeypatch.setattr(results_module.os, "replace", interrupted_replace)
        with pytest.raises(CampaignInterrupted) as info:
            CampaignExecutor().run(
                campaign, checkpoint_path=str(path), checkpoint_every=1
            )
        # The emergency save retried the publish: the file on disk is a
        # complete, loadable store — never a truncated one.
        checkpoint = CampaignResult.load(str(path))
        assert len(checkpoint) == len(info.value.partial) == 1
        executed = []
        resumed = CampaignExecutor().run(
            campaign,
            resume=checkpoint,
            progress=lambda label, done, total: executed.append(label),
            checkpoint_path=str(path),
        )
        assert executed == [s.label for s in checkpoint.pending(campaign)]
        assert resumed.to_json() == full_store.to_json()


class TestResumeSemantics:
    def test_resume_reruns_failed_not_done(self, campaign, full_store):
        partial = CampaignResult.from_json(full_store.to_json())
        victim = campaign.scenarios[2]
        partial.add(
            ScenarioOutcome.failure(victim, error="Killed", traceback_text="...")
        )
        executed = []
        resumed = CampaignExecutor().run(
            campaign,
            resume=partial,
            progress=lambda label, done, total: executed.append(label),
        )
        assert executed == [victim.label]
        assert resumed.to_json() == full_store.to_json()

    def test_pending_lists_failed_and_missing(self, campaign, full_store):
        partial = CampaignResult.from_json(full_store.to_json())
        partial.add(
            ScenarioOutcome.failure(campaign.scenarios[0], error="x", traceback_text="")
        )
        del partial.outcomes[campaign.scenarios[3].scenario_id]
        pending = partial.pending(campaign)
        assert [s.label for s in pending] == [
            campaign.scenarios[0].label,
            campaign.scenarios[3].label,
        ]


class TestCheckpointing:
    def test_checkpoint_written_incrementally(self, campaign, full_store, tmp_path):
        path = tmp_path / "ckpt.json"
        sizes = []

        def watch(label, done, total):
            # The checkpoint on disk always trails by < checkpoint_every.
            sizes.append(len(CampaignResult.load(str(path))) if path.exists() else 0)

        store = CampaignExecutor().run(
            campaign, progress=watch, checkpoint_path=str(path), checkpoint_every=1
        )
        # Before completion k the file held k-1 outcomes (progress fires
        # after add but before the k-th checkpoint write).
        assert sizes == [0, 1, 2, 3]
        assert store.to_json() == full_store.to_json()
        # The final checkpoint is the completed, campaign-ordered store.
        assert CampaignResult.load(str(path)).to_json() == full_store.to_json()
        assert not (tmp_path / "ckpt.json.tmp").exists()

    def test_checkpoint_every_k(self, campaign, tmp_path):
        path = tmp_path / "ckpt.json"
        observed = []

        def watch(label, done, total):
            observed.append(path.exists())

        CampaignExecutor().run(
            campaign, progress=watch, checkpoint_path=str(path), checkpoint_every=3
        )
        # No file after completions 1 and 2; written at completion 3.
        assert observed == [False, False, False, True]

    def test_checkpoint_every_validated(self, campaign):
        with pytest.raises(ConfigurationError):
            CampaignExecutor().run(campaign, checkpoint_every=0)

    def test_crash_resume_is_bit_identical(self, campaign, full_store, tmp_path):
        """Kill a checkpointing campaign mid-run, resume, compare JSON."""
        path = tmp_path / "ckpt.json"

        def bomb(label, done, total):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as info:
            CampaignExecutor().run(campaign, progress=bomb, checkpoint_path=str(path))
        assert len(info.value.partial) == 2
        assert info.value.checkpoint_path == str(path)
        # The interrupt saved a loadable checkpoint with the completed work.
        checkpoint = CampaignResult.load(str(path))
        assert len(checkpoint) == 2

        executed = []
        resumed = CampaignExecutor().run(
            campaign,
            resume=checkpoint,
            progress=lambda label, done, total: executed.append(label),
            checkpoint_path=str(path),
        )
        assert len(executed) == 2  # only the missing half re-ran
        assert resumed.to_json() == full_store.to_json()
        assert json.loads(resumed.to_json()) == json.loads(full_store.to_json())

    def test_fatal_error_still_saves_emergency_checkpoint(self, campaign, tmp_path):
        """Any fatal error (not just Ctrl-C) persists completed work first."""
        path = tmp_path / "ckpt.json"

        def bomb(label, done, total):
            if done == 2:
                raise RuntimeError("harness died")

        with pytest.raises(RuntimeError, match="harness died"):
            CampaignExecutor().run(
                campaign, progress=bomb, checkpoint_path=str(path), checkpoint_every=99
            )
        assert len(CampaignResult.load(str(path))) == 2

    def test_interrupt_without_checkpoint_carries_partial(self, campaign):
        def bomb(label, done, total):
            raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as info:
            CampaignExecutor().run(campaign, progress=bomb)
        assert info.value.checkpoint_path is None
        assert len(info.value.partial) == 1

    def test_atomic_save_replaces_not_truncates(self, full_store, tmp_path):
        path = tmp_path / "store.json"
        full_store.save(str(path))
        first = path.read_text()
        full_store.save(str(path))
        assert path.read_text() == first
        assert not (tmp_path / "store.json.tmp").exists()


class TestSharding:
    def test_shards_are_disjoint_and_cover(self, campaign):
        shards = [campaign.shard(i, 3) for i in range(3)]
        labels = [s.label for shard in shards for s in shard.scenarios]
        assert sorted(labels) == sorted(campaign.labels)
        assert all(shard.name == campaign.name for shard in shards)

    def test_shard_is_deterministic_interleave(self, campaign):
        assert [s.label for s in campaign.shard(0, 2).scenarios] == [
            campaign.labels[0],
            campaign.labels[2],
        ]
        assert [s.label for s in campaign.shard(1, 2).scenarios] == [
            campaign.labels[1],
            campaign.labels[3],
        ]

    def test_shard_validation(self, campaign):
        with pytest.raises(ConfigurationError):
            campaign.shard(2, 2)
        with pytest.raises(ConfigurationError):
            campaign.shard(-1, 2)
        with pytest.raises(ConfigurationError):
            campaign.shard(0, 0)
        with pytest.raises(ConfigurationError):
            campaign.shard(4, 5)  # only 4 scenarios: shard 4/5 is empty

    def test_sharded_run_merges_to_unsharded(self, campaign, full_store):
        stores = [run_campaign(campaign.shard(i, 2)) for i in range(2)]
        merged = CampaignResult.merge(stores).ordered_for(campaign)
        assert merged.to_json() == full_store.to_json()


class TestMerge:
    def test_merge_requires_stores(self):
        with pytest.raises(ConfigurationError):
            CampaignResult.merge([])

    def test_merge_rejects_different_campaigns(self, full_store):
        other = CampaignResult.from_json(full_store.to_json())
        other.campaign_name = "something-else"
        with pytest.raises(ConfigurationError):
            CampaignResult.merge([full_store, other])

    def test_merge_conflict_is_error(self, campaign, full_store):
        conflicting = CampaignResult(campaign_name=campaign.name)
        conflicting.add(
            ScenarioOutcome.failure(campaign.scenarios[0], error="x", traceback_text="")
        )
        with pytest.raises(SimulationError):
            CampaignResult.merge([full_store, conflicting])

    def test_identical_duplicates_union_silently(self, full_store):
        twin = CampaignResult.from_json(full_store.to_json())
        merged = CampaignResult.merge([full_store, twin])
        assert merged.to_json() == full_store.to_json()


class TestCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        small_campaign().save(str(path))
        return str(path)

    def test_shard_then_merge_equals_unsharded(self, spec_path, tmp_path, capsys):
        full = str(tmp_path / "full.json")
        assert cli_main([spec_path, "--quiet", "--output", full]) == 0
        shard_files = []
        for index in range(2):
            out = str(tmp_path / f"shard{index}.json")
            shard_files.append(out)
            assert cli_main(
                [spec_path, "--shard", f"{index}/2", "--quiet", "--output", out]
            ) == 0
        merged = str(tmp_path / "merged.json")
        assert cli_main(
            ["merge", *shard_files, "--spec", spec_path, "--output", merged, "--quiet"]
        ) == 0
        # Compare through the loader so the assertion holds whatever on-disk
        # format `auto` negotiated (legacy JSON here, columnar under pyarrow).
        assert CampaignResult.load(merged).to_dict() == CampaignResult.load(full).to_dict()

    def test_bad_shard_selector_is_usage_error(self, spec_path, capsys):
        assert cli_main([spec_path, "--shard", "nope", "--quiet"]) == 2
        assert "--shard expects" in capsys.readouterr().err

    def test_failed_scenario_exit_code(self, tmp_path, capsys):
        campaign = CampaignSpec(name="bad", scenarios=(broken_scenario(),))
        path = tmp_path / "bad.json"
        campaign.save(str(path))
        out = str(tmp_path / "bad_results.json")
        assert cli_main([str(path), "--quiet", "--output", out]) == 1
        assert "failed" in capsys.readouterr().out
        # The failed outcome is still persisted for inspection/resume.
        assert len(CampaignResult.load(out).failed()) == 1

    def test_checkpoint_flag_resumes_automatically(self, spec_path, tmp_path, capsys):
        checkpoint = str(tmp_path / "ckpt.json")
        assert cli_main([spec_path, "--quiet", "--checkpoint", checkpoint]) == 0
        first = CampaignResult.load(checkpoint).to_json()
        # Second invocation finds everything done and re-runs nothing.
        assert cli_main([spec_path, "--checkpoint", checkpoint]) == 0
        assert capsys.readouterr().err == ""  # no per-scenario progress lines
        assert CampaignResult.load(checkpoint).to_json() == first

    def test_merge_conflict_exit_code(self, spec_path, tmp_path, capsys):
        campaign = CampaignSpec.load(spec_path)
        good = run_campaign(campaign)
        bad = CampaignResult(campaign_name=campaign.name)
        bad.add(
            ScenarioOutcome.failure(campaign.scenarios[0], error="x", traceback_text="")
        )
        good_path, bad_path = str(tmp_path / "good.json"), str(tmp_path / "bad.json")
        good.save(good_path)
        bad.save(bad_path)
        merged = str(tmp_path / "merged.json")
        assert cli_main(["merge", good_path, bad_path, "--output", merged]) == 2
        assert "conflicting outcomes" in capsys.readouterr().err


class TestExperimentSettingsCheckpointing:
    def test_run_campaign_checkpoints_and_resumes(self, tmp_path):
        from repro.experiments import ExperimentSettings

        settings = ExperimentSettings(
            num_frames=FRAMES, checkpoint_dir=str(tmp_path), checkpoint_every=1
        )
        campaign = small_campaign(name="exp-ckpt")
        store = settings.run_campaign(campaign)
        checkpoint = tmp_path / "exp-ckpt.checkpoint.json"
        assert checkpoint.exists()
        assert CampaignResult.load(str(checkpoint)).to_json() == store.to_json()
        # Second run resumes: no scenario re-executes (identical output).
        assert settings.run_campaign(campaign).to_json() == store.to_json()

    def test_run_campaign_raises_on_failures(self, tmp_path):
        from repro.experiments import ExperimentSettings

        settings = ExperimentSettings(num_frames=FRAMES, checkpoint_dir=str(tmp_path))
        campaign = CampaignSpec(name="exp-bad", scenarios=(broken_scenario(),))
        with pytest.raises(SimulationError):
            settings.run_campaign(campaign)
        # The failed outcome was checkpointed for post-mortem inspection.
        saved = CampaignResult.load(str(tmp_path / "exp-bad.checkpoint.json"))
        assert [o.label for o in saved.failed()] == ["broken"]
