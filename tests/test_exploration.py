"""Unit tests for the exploration policies (eq. 2) and the ε schedule (eq. 6)."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.platform.odroid_xu3 import A15_VF_TABLE
from repro.rtm.exploration import EpsilonSchedule, ExponentialPolicy, UniformPolicy

FREQUENCIES = A15_VF_TABLE.frequencies_hz


class TestUniformPolicy:
    def test_probabilities_are_uniform(self):
        probabilities = UniformPolicy().probabilities(19, FREQUENCIES, slack=0.3)
        assert len(probabilities) == 19
        assert all(p == pytest.approx(1.0 / 19.0) for p in probabilities)
        assert sum(probabilities) == pytest.approx(1.0)

    def test_sampling_covers_action_space(self):
        policy = UniformPolicy()
        rng = random.Random(0)
        samples = {policy.sample(19, FREQUENCIES, 0.0, rng) for _ in range(500)}
        assert len(samples) > 12

    def test_invalid_action_count_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformPolicy().probabilities(0, [], 0.0)


class TestExponentialPolicy:
    def test_probabilities_sum_to_one(self):
        policy = ExponentialPolicy(beta=12.0)
        for slack in (-0.4, -0.1, 0.0, 0.1, 0.4):
            probabilities = policy.probabilities(19, FREQUENCIES, slack)
            assert sum(probabilities) == pytest.approx(1.0)
            assert all(p >= 0.0 for p in probabilities)

    def test_positive_slack_favours_low_frequencies(self):
        probabilities = ExponentialPolicy(beta=12.0).probabilities(19, FREQUENCIES, slack=0.4)
        assert probabilities[0] > probabilities[-1]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_negative_slack_favours_high_frequencies(self):
        probabilities = ExponentialPolicy(beta=12.0).probabilities(19, FREQUENCIES, slack=-0.4)
        assert probabilities[-1] > probabilities[0]
        assert probabilities == sorted(probabilities)

    def test_near_zero_slack_is_nearly_uniform(self):
        """The paper: 'For values of L close to zero, the EP are almost uniform.'"""
        probabilities = ExponentialPolicy(beta=12.0).probabilities(19, FREQUENCIES, slack=0.005)
        assert max(probabilities) / min(probabilities) < 1.2

    def test_beta_controls_concentration(self):
        weak = ExponentialPolicy(beta=2.0).probabilities(19, FREQUENCIES, slack=0.3)
        strong = ExponentialPolicy(beta=20.0).probabilities(19, FREQUENCIES, slack=0.3)
        assert max(strong) > max(weak)

    def test_sampling_respects_bias(self):
        policy = ExponentialPolicy(beta=12.0)
        rng = random.Random(1)
        samples = [policy.sample(19, FREQUENCIES, slack=0.4, rng=rng) for _ in range(400)]
        assert sum(samples) / len(samples) < 9.0  # biased towards low indices

    def test_frequency_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialPolicy().probabilities(5, FREQUENCIES, 0.1)

    def test_negative_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialPolicy(beta=-1.0)


class TestEpsilonSchedule:
    def test_decay_follows_equation_6(self):
        schedule = EpsilonSchedule(initial_epsilon=0.9, alpha=0.25)
        expected = 0.9 * math.exp(-0.25 * (1.0 - 0.9))
        assert schedule.update(reward=1.0, confirmed=True) == pytest.approx(expected)

    def test_no_decay_on_negative_reward(self):
        schedule = EpsilonSchedule(initial_epsilon=0.9, alpha=0.25)
        schedule.update(reward=-0.5, confirmed=True)
        assert schedule.epsilon == pytest.approx(0.9)

    def test_no_decay_without_confirmation(self):
        schedule = EpsilonSchedule(initial_epsilon=0.9, alpha=0.25)
        schedule.update(reward=1.0, confirmed=False)
        assert schedule.epsilon == pytest.approx(0.9)

    def test_unconditional_mode_decays_always(self):
        schedule = EpsilonSchedule(initial_epsilon=0.9, alpha=0.25, decay_on_any_reward=True)
        schedule.update(reward=-1.0, confirmed=False)
        assert schedule.epsilon < 0.9

    def test_epsilon_never_drops_below_floor(self):
        schedule = EpsilonSchedule(initial_epsilon=0.5, alpha=1.0, minimum_epsilon=0.05)
        for _ in range(200):
            schedule.update(reward=1.0, confirmed=True)
        assert schedule.epsilon == pytest.approx(0.05)
        assert schedule.is_exploiting

    def test_should_explore_probability_matches_epsilon(self):
        schedule = EpsilonSchedule(initial_epsilon=0.5, alpha=0.25)
        rng = random.Random(0)
        draws = [schedule.should_explore(rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(0.5, abs=0.05)

    def test_should_explore_false_once_exploiting(self):
        schedule = EpsilonSchedule(initial_epsilon=0.02, alpha=0.5, minimum_epsilon=0.02)
        assert schedule.is_exploiting
        rng = random.Random(0)
        assert not any(schedule.should_explore(rng) for _ in range(100))

    def test_reset_restores_initial_value(self):
        schedule = EpsilonSchedule(initial_epsilon=0.8, alpha=0.5)
        schedule.update(1.0)
        schedule.reset()
        assert schedule.epsilon == pytest.approx(0.8)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            EpsilonSchedule(initial_epsilon=1.5)
        with pytest.raises(ConfigurationError):
            EpsilonSchedule(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EpsilonSchedule(initial_epsilon=0.5, minimum_epsilon=0.9)
