"""Unit tests for the stochastic workload models (video, FFT, PARSEC, SPLASH-2)."""

import pytest

from repro.errors import WorkloadError
from repro.platform.odroid_xu3 import A15_VF_TABLE
from repro.workload.fft import FFTWorkloadModel, fft_application
from repro.workload.generators import PhaseSpec, PhasedWorkloadGenerator
from repro.workload.parsec import PARSEC_BENCHMARKS, parsec_application
from repro.workload.splash2 import SPLASH2_BENCHMARKS, splash2_application
from repro.workload.video import (
    VideoWorkloadModel,
    h264_application,
    h264_football_application,
    mpeg4_application,
)


class TestVideoModel:
    def test_generation_is_reproducible(self):
        first = mpeg4_application(num_frames=50, seed=9)
        second = mpeg4_application(num_frames=50, seed=9)
        assert [f.total_cycles for f in first] == [f.total_cycles for f in second]

    def test_different_seeds_differ(self):
        first = mpeg4_application(num_frames=50, seed=1)
        second = mpeg4_application(num_frames=50, seed=2)
        assert [f.total_cycles for f in first] != [f.total_cycles for f in second]

    def test_gop_structure_tags_frames(self):
        application = h264_application(num_frames=24)
        kinds = [frame.kind for frame in application]
        assert kinds[0] in {"I", "P", "B"}
        assert set(kinds) <= {"I", "P", "B"}
        assert "I" in kinds

    def test_mean_demand_close_to_requested(self):
        target = 8.0e7
        application = h264_football_application(num_frames=800, mean_frame_cycles=target)
        assert application.mean_frame_cycles == pytest.approx(target, rel=0.15)

    def test_football_fits_platform_capacity(self):
        """The heaviest frame must be decodable at 2 GHz within the deadline."""
        application = h264_football_application(num_frames=1000)
        capacity = A15_VF_TABLE.max_point.frequency_hz * application.reference_time_s
        assert max(f.max_thread_cycles for f in application) < capacity

    def test_football_more_variable_than_fft(self):
        football = h264_football_application(num_frames=500)
        fft = fft_application(num_frames=500)
        assert football.workload_variability() > 3 * fft.workload_variability()

    def test_deadlines_match_fps(self):
        application = mpeg4_application(num_frames=10, frames_per_second=24.0)
        assert all(f.deadline_s == pytest.approx(1.0 / 24.0) for f in application)

    def test_forced_scene_changes_raise_demand(self):
        base_kwargs = dict(
            name="video",
            frames_per_second=25.0,
            mean_frame_cycles=8e7,
            jitter_cv=0.0,
            motion_sigma=0.0,
            scene_change_probability=0.0,
            seed=4,
        )
        quiet = VideoWorkloadModel(**base_kwargs).generate(60)
        cut = VideoWorkloadModel(**base_kwargs, forced_scene_change_frames=(30,)).generate(60)
        assert cut[30].total_cycles > quiet[30].total_cycles

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            VideoWorkloadModel("bad", 25.0, mean_frame_cycles=-1.0)
        with pytest.raises(WorkloadError):
            VideoWorkloadModel("bad", 25.0, mean_frame_cycles=1e7, gop_pattern="IXP")
        with pytest.raises(WorkloadError):
            VideoWorkloadModel("bad", 25.0, mean_frame_cycles=1e7, scene_change_probability=2.0)


class TestFFTModel:
    def test_low_variability(self):
        application = fft_application(num_frames=400)
        assert application.workload_variability() < 0.05

    def test_drift_changes_mean_over_time(self):
        model = FFTWorkloadModel(
            name="fft-drift",
            frames_per_second=32.0,
            mean_frame_cycles=5e7,
            jitter_cv=0.0,
            drift_amplitude=0.2,
            drift_period_frames=100,
            seed=1,
        )
        application = model.generate(100)
        first_quarter = sum(f.total_cycles for f in application.frames[:25]) / 25
        third_quarter = sum(f.total_cycles for f in application.frames[50:75]) / 25
        assert first_quarter != pytest.approx(third_quarter, rel=0.01)

    def test_even_thread_split_by_default(self):
        application = fft_application(num_frames=5)
        frame = application[0]
        assert max(frame.thread_cycles) == pytest.approx(min(frame.thread_cycles))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            FFTWorkloadModel("bad", 32.0, mean_frame_cycles=0.0)
        with pytest.raises(WorkloadError):
            FFTWorkloadModel("bad", 32.0, mean_frame_cycles=1e7, jitter_cv=-0.1)


class TestPhasedGenerators:
    def test_phase_cycling(self):
        generator = PhasedWorkloadGenerator(
            name="phased",
            frames_per_second=25.0,
            phases=[
                PhaseSpec("light", length_frames=5, mean_cycles=1e7, cv=0.0),
                PhaseSpec("heavy", length_frames=5, mean_cycles=5e7, cv=0.0),
            ],
            seed=0,
        )
        application = generator.generate(20)
        assert application[0].kind == "light"
        assert application[7].kind == "heavy"
        assert application[12].kind == "light"
        assert application[2].total_cycles < application[7].total_cycles

    def test_invalid_phase_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSpec("bad", length_frames=0, mean_cycles=1e7)
        with pytest.raises(WorkloadError):
            PhasedWorkloadGenerator("empty", 25.0, phases=[])

    def test_parsec_catalogue(self):
        assert "bodytrack" in PARSEC_BENCHMARKS
        application = parsec_application("bodytrack", num_frames=100)
        assert application.num_frames == 100
        assert application.name == "parsec-bodytrack"
        assert application.workload_variability() > 0.0

    def test_splash2_catalogue(self):
        assert "fft" in SPLASH2_BENCHMARKS
        application = splash2_application("lu", num_frames=80)
        assert application.num_frames == 80
        assert application.name == "splash2-lu"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            parsec_application("doom")
        with pytest.raises(WorkloadError):
            splash2_application("quake")

    def test_scale_multiplies_demand(self):
        base = parsec_application("ferret", num_frames=60, seed=2)
        scaled = parsec_application("ferret", num_frames=60, seed=2, scale=2.0)
        assert scaled.mean_frame_cycles == pytest.approx(2 * base.mean_frame_cycles, rel=0.05)
        with pytest.raises(WorkloadError):
            parsec_application("ferret", scale=0.0)

    def test_every_catalogued_benchmark_generates(self):
        for name in PARSEC_BENCHMARKS:
            assert parsec_application(name, num_frames=30).num_frames == 30
        for name in SPLASH2_BENCHMARKS:
            assert splash2_application(name, num_frames=30).num_frames == 30
