"""Unit tests for the Q-learning agent, overhead model and convergence detector."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.odroid_xu3 import A15_VF_TABLE
from repro.rtm.exploration import UniformPolicy
from repro.rtm.overhead import ConvergenceDetector, OverheadModel
from repro.rtm.qlearning import QLearningAgent, QLearningParameters

FREQUENCIES = A15_VF_TABLE.frequencies_hz


def make_agent(**overrides) -> QLearningAgent:
    parameters = QLearningParameters(**overrides)
    return QLearningAgent(
        num_states=25,
        num_actions=len(FREQUENCIES),
        action_frequencies_hz=FREQUENCIES,
        parameters=parameters,
        seed=1,
    )


class TestQLearningParameters:
    def test_defaults_are_valid(self):
        parameters = QLearningParameters()
        assert 0 < parameters.learning_rate <= 1
        assert 0 <= parameters.discount < 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            QLearningParameters(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            QLearningParameters(discount=1.0)


class TestQLearningAgent:
    def test_update_applies_bellman_equation(self):
        agent = make_agent(learning_rate=0.5, discount=0.4)
        agent.qtable.set(3, 2, 1.0)
        agent.qtable.set(4, 7, 2.0)
        target = 0.7 + 0.4 * 2.0
        new_value = agent.update(state=3, action=2, reward=0.7, next_state=4)
        assert new_value == pytest.approx(0.5 * 1.0 + 0.5 * target)
        assert agent.update_count == 1

    def test_repeated_updates_converge_to_fixed_point(self):
        agent = make_agent(learning_rate=0.5, discount=0.0)
        for _ in range(100):
            agent.update(state=0, action=0, reward=1.0, next_state=0)
        assert agent.qtable.get(0, 0) == pytest.approx(1.0, rel=1e-3)

    def test_greedy_learning_prefers_higher_reward_action(self):
        agent = make_agent(learning_rate=0.5, discount=0.0)
        for _ in range(30):
            agent.update(0, 5, reward=1.0, next_state=0)
            agent.update(0, 15, reward=0.2, next_state=0)
        assert agent.greedy_action(0) == 5

    def test_select_action_explores_then_exploits(self):
        agent = make_agent(initial_epsilon=1.0, minimum_epsilon=0.01)
        action, explored = agent.select_action(state=0, slack=0.3)
        assert explored
        assert agent.exploration_draws == 1
        # Force the schedule to the floor and confirm greedy selection.
        agent.epsilon_schedule._epsilon = agent.epsilon_schedule.minimum_epsilon
        agent.qtable.set(0, 4, 5.0)
        action, explored = agent.select_action(state=0, slack=0.3)
        assert not explored
        assert action == 4

    def test_exploration_phase_length_tracks_exploitation_start(self):
        agent = make_agent(initial_epsilon=0.9, epsilon_alpha=1.5, minimum_epsilon=0.05)
        for i in range(200):
            agent.select_action(state=0, slack=0.1)
            agent.update(0, agent.greedy_action(0), reward=1.0, next_state=0)
            if agent.is_exploiting and agent.exploration_phase_length < 200:
                break
        assert agent.is_exploiting
        assert agent.exploration_phase_length < 200

    def test_policy_change_flag(self):
        agent = make_agent(learning_rate=1.0, discount=0.0)
        agent.update(0, 3, reward=5.0, next_state=0)
        assert agent.last_update_changed_policy
        agent.update(0, 3, reward=5.0, next_state=0)
        assert not agent.last_update_changed_policy

    def test_reset_learning_state_keeps_q_values(self):
        agent = make_agent()
        agent.update(0, 0, 1.0, 0)
        agent.select_action(0, 0.1)
        learnt = agent.qtable.get(0, 0)
        agent.reset_learning_state()
        assert agent.exploration_draws == 0
        assert agent.update_count == 0
        assert agent.qtable.get(0, 0) == pytest.approx(learnt)

    def test_frequency_count_must_match_actions(self):
        with pytest.raises(ConfigurationError):
            QLearningAgent(num_states=5, num_actions=3, action_frequencies_hz=[1e9])

    def test_custom_policy_is_used(self):
        agent = QLearningAgent(
            num_states=5,
            num_actions=len(FREQUENCIES),
            action_frequencies_hz=FREQUENCIES,
            policy=UniformPolicy(),
            seed=0,
        )
        assert isinstance(agent.policy, UniformPolicy)


class TestOverheadModel:
    def test_learning_costs_more_than_exploitation(self):
        overhead = OverheadModel()
        assert overhead.epoch_overhead_s(learning=True) > overhead.epoch_overhead_s(learning=False)

    def test_transition_latency_added(self):
        overhead = OverheadModel()
        base = overhead.epoch_overhead_s(learning=False)
        assert overhead.epoch_overhead_s(learning=False, transition_latency_s=1e-4) == pytest.approx(
            base + 1e-4
        )

    def test_overhead_is_small_fraction_of_frame_period(self):
        """The RTM's per-epoch cost must be negligible against a 40 ms frame."""
        overhead = OverheadModel()
        assert overhead.epoch_overhead_s(learning=True, transition_latency_s=1e-4) < 0.002

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(sensor_sampling_s=-1.0)
        with pytest.raises(ValueError):
            OverheadModel().epoch_overhead_s(learning=True, transition_latency_s=-1.0)


class TestConvergenceDetector:
    def test_converges_after_stable_window(self):
        detector = ConvergenceDetector(window=5)
        for _ in range(4):
            detector.observe(action=7, explored=False)
        assert not detector.has_converged
        detector.observe(action=7, explored=False)
        assert detector.has_converged
        assert detector.converged_epoch == 0

    def test_exploration_resets_progress(self):
        detector = ConvergenceDetector(window=3)
        detector.observe(3, explored=False)
        detector.observe(3, explored=True)
        detector.observe(3, explored=False)
        detector.observe(3, explored=False)
        assert not detector.has_converged
        detector.observe(3, explored=False)
        assert detector.has_converged

    def test_policy_changes_block_convergence(self):
        detector = ConvergenceDetector(window=3, track_action_range=False)
        for _ in range(3):
            detector.observe(2, explored=False, policy_changed=True)
        assert not detector.has_converged
        for _ in range(3):
            detector.observe(2, explored=False, policy_changed=False)
        assert detector.has_converged

    def test_action_range_criterion(self):
        detector = ConvergenceDetector(window=4, tolerance=1)
        for action in (5, 6, 5, 6):
            detector.observe(action, explored=False)
        assert detector.has_converged
        wide = ConvergenceDetector(window=4, tolerance=1)
        for action in (5, 9, 5, 9):
            wide.observe(action, explored=False)
        assert not wide.has_converged

    def test_converged_epoch_accounts_for_window(self):
        detector = ConvergenceDetector(window=3)
        detector.observe(1, explored=True)
        detector.observe(1, explored=True)
        for _ in range(3):
            detector.observe(1, explored=False)
        assert detector.converged_epoch == 2

    def test_reset(self):
        detector = ConvergenceDetector(window=2)
        detector.observe(1, False)
        detector.observe(1, False)
        detector.reset()
        assert not detector.has_converged

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ConvergenceDetector(window=0)
        with pytest.raises(ConfigurationError):
            ConvergenceDetector(tolerance=-1)
