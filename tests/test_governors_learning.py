"""Unit tests for the learning governors: the proposed RTM and the learning baselines."""

import pytest

from repro.errors import ConfigurationError
from repro.governors.multicore_dvfs import MultiCoreDVFSGovernor, MultiCoreDVFSParameters
from repro.governors.shen_rl import ShenRLGovernor
from repro.rtm.exploration import ExponentialPolicy, UniformPolicy
from repro.rtm.governor import EpochObservation
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig
from repro.rtm.state import WorkloadNormalisation


def make_observation(busy_time_s, operating_index, epoch_index=0, reference_time_s=0.040,
                     cycles_per_core=(2e7, 1.5e7, 1.5e7, 1.8e7), overhead=0.0005):
    return EpochObservation(
        epoch_index=epoch_index,
        cycles_per_core=cycles_per_core,
        busy_time_s=busy_time_s,
        interval_s=max(busy_time_s, reference_time_s),
        reference_time_s=reference_time_s,
        operating_index=operating_index,
        energy_j=0.08,
        measured_power_w=2.0,
        overhead_time_s=overhead,
    )


class TestRLGovernorSetup:
    def test_first_decision_is_fastest_point(self, platform_info, requirement_25fps):
        governor = RLGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert governor.decide(None) == platform_info.num_actions - 1

    def test_accessors_raise_before_setup(self):
        governor = RLGovernor()
        with pytest.raises(ConfigurationError):
            _ = governor.agent
        with pytest.raises(ConfigurationError):
            _ = governor.predictor
        with pytest.raises(ConfigurationError):
            _ = governor.slack_tracker

    def test_state_space_dimensions_follow_config(self, platform_info, requirement_25fps):
        governor = RLGovernor(RLGovernorConfig(workload_levels=3, slack_levels=4))
        governor.setup(platform_info, requirement_25fps)
        assert governor.state_space.num_states == 12
        assert governor.agent.qtable.num_actions == platform_info.num_actions

    def test_epd_policy_by_default_upd_when_configured(self, platform_info, requirement_25fps):
        epd = RLGovernor()
        epd.setup(platform_info, requirement_25fps)
        assert isinstance(epd.agent.policy, ExponentialPolicy)
        upd = RLGovernor(RLGovernorConfig(use_exponential_exploration=False))
        upd.setup(platform_info, requirement_25fps)
        assert isinstance(upd.agent.policy, UniformPolicy)
        assert "upd" in upd.name

    def test_setup_resets_learning_state(self, platform_info, requirement_25fps):
        governor = RLGovernor()
        governor.setup(platform_info, requirement_25fps)
        governor.decide(None)
        governor.decide(make_observation(0.030, 18))
        governor.setup(platform_info, requirement_25fps)
        assert governor.exploration_count == 0
        assert governor.reward_history == []


class TestRLGovernorBehaviour:
    def _drive(self, governor, platform_info, requirement, epochs, busy_for_index):
        """Drive the governor closed-loop with a synthetic execution model."""
        index = governor.decide(None)
        for epoch in range(epochs):
            busy = busy_for_index(index)
            observation = make_observation(busy, index, epoch_index=epoch)
            index = governor.decide(observation)
        return index

    def test_learns_to_slow_down_when_overperforming(self, platform_info, requirement_25fps):
        """A constant light workload should end up well below the maximum frequency."""
        governor = RLGovernor()
        governor.setup(platform_info, requirement_25fps)
        table = platform_info.vf_table
        demand = 2.0e7  # needs only 500 MHz for a 40 ms budget

        final_index = self._drive(
            governor, platform_info, requirement_25fps, epochs=250,
            busy_for_index=lambda i: demand / table[i].frequency_hz,
        )
        # After learning, the governor should not sit at the fastest point...
        assert final_index < platform_info.num_actions - 1
        # ...and the chosen point should still meet the deadline.
        assert table[final_index].time_for_cycles(demand) <= requirement_25fps.tref_s

    def test_reward_history_and_slack_tracking_populate(self, platform_info, requirement_25fps):
        governor = RLGovernor()
        governor.setup(platform_info, requirement_25fps)
        index = governor.decide(None)
        for epoch in range(10):
            index = governor.decide(make_observation(0.030, index, epoch_index=epoch))
        assert len(governor.reward_history) == 10
        assert governor.slack_tracker.epochs == 10
        assert governor.predictor.last_prediction is not None

    def test_overhead_reported_each_epoch(self, platform_info, requirement_25fps):
        governor = RLGovernor()
        governor.setup(platform_info, requirement_25fps)
        governor.decide(None)
        assert governor.processing_overhead_s > 0.0

    def test_exploration_phase_eventually_ends(self, platform_info, requirement_25fps):
        governor = RLGovernor()
        governor.setup(platform_info, requirement_25fps)
        table = platform_info.vf_table
        demand = 2.5e7
        self._drive(
            governor, platform_info, requirement_25fps, epochs=400,
            busy_for_index=lambda i: demand / table[i].frequency_hz,
        )
        assert governor.agent.is_exploiting
        assert 0 < governor.exploration_count < 400

    def test_describe_mentions_policy(self, platform_info, requirement_25fps):
        governor = RLGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert "EPD" in governor.describe()


class TestMultiCoreRLGovernor:
    def test_per_core_predictors_created(self, platform_info, requirement_25fps):
        governor = MultiCoreRLGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert len(governor.core_predictors) == platform_info.num_cores

    def test_round_robin_core_rotates(self, platform_info, requirement_25fps):
        governor = MultiCoreRLGovernor()
        governor.setup(platform_info, requirement_25fps)
        index = governor.decide(None)
        assert governor.round_robin_core == 0
        index = governor.decide(make_observation(0.030, index, epoch_index=0))
        assert governor.round_robin_core == 1
        governor.decide(make_observation(0.030, index, epoch_index=1))
        assert governor.round_robin_core == 2

    def test_total_share_mode_uses_equation_7_state_space(self, platform_info, requirement_25fps):
        governor = MultiCoreRLGovernor(RLGovernorConfig(use_total_share_normalisation=True))
        governor.setup(platform_info, requirement_25fps)
        assert governor.state_space.normalisation is WorkloadNormalisation.TOTAL_SHARE
        default = MultiCoreRLGovernor()
        default.setup(platform_info, requirement_25fps)
        assert default.state_space.normalisation is WorkloadNormalisation.CAPACITY

    def test_accessor_raises_before_setup(self):
        with pytest.raises(ConfigurationError):
            _ = MultiCoreRLGovernor().core_predictors


class TestShenRLGovernor:
    def test_uses_uniform_exploration(self, platform_info, requirement_25fps):
        governor = ShenRLGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert isinstance(governor.agent.policy, UniformPolicy)
        assert governor.name == "shen-rl-upd"

    def test_respects_custom_base_config(self, platform_info, requirement_25fps):
        governor = ShenRLGovernor(RLGovernorConfig(workload_levels=3, slack_levels=3))
        governor.setup(platform_info, requirement_25fps)
        assert governor.state_space.num_states == 9


class TestMultiCoreDVFSGovernor:
    def test_starts_at_maximum_and_learns_tables(self, platform_info, requirement_25fps):
        governor = MultiCoreDVFSGovernor()
        governor.setup(platform_info, requirement_25fps)
        index = governor.decide(None)
        assert index == platform_info.num_actions - 1
        for epoch in range(5):
            index = governor.decide(make_observation(0.020, index, epoch_index=epoch))
        assert governor.exploration_count > 0

    def test_panic_on_miss_selects_maximum(self, platform_info, requirement_25fps):
        governor = MultiCoreDVFSGovernor()
        governor.setup(platform_info, requirement_25fps)
        governor.decide(None)
        missed = make_observation(0.050, 10)  # busy > Tref
        assert governor.decide(missed) == platform_info.num_actions - 1

    def test_learned_bins_stop_counting_as_exploration(self, platform_info, requirement_25fps):
        governor = MultiCoreDVFSGovernor(MultiCoreDVFSParameters(min_visits=1, workload_bins=1))
        governor.setup(platform_info, requirement_25fps)
        index = governor.decide(None)
        for epoch in range(12):
            index = governor.decide(make_observation(0.020, index, epoch_index=epoch))
        early_explorations = governor.exploration_count
        for epoch in range(12, 40):
            index = governor.decide(make_observation(0.020, index, epoch_index=epoch))
        # Once every per-core bin is trusted, no further epochs count as learning.
        assert governor.exploration_count == early_explorations

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiCoreDVFSParameters(target_utilisation=0.0)
        with pytest.raises(ConfigurationError):
            MultiCoreDVFSParameters(frequency_margin=0.5)
        with pytest.raises(ConfigurationError):
            MultiCoreDVFSParameters(table_decay=1.5)
