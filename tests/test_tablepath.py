"""Equivalence, fallback and columnar-result tests for the table-driven engine.

The contract under test: for every *closed-loop* governor (the paper's
Q-learning RTM in both formulations, the UPD baseline and the reactive
Linux policies) the table-driven engine in :mod:`repro.sim.tablepath` must
reproduce the scalar engine frame by frame — every float within 1e-9
relative tolerance, identical operating-point trajectories, identical
deadline-miss sets, identical exploration counts and identical final
Q-tables — and the engine must fall back to the scalar loop whenever the
platform is ineligible.
"""

from __future__ import annotations

import pytest

from repro.errors import PlatformError, SimulationError
from repro.governors.conservative import ConservativeGovernor
from repro.governors.multicore_dvfs import MultiCoreDVFSGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.oracle import OracleGovernor
from repro.governors.shen_rl import ShenRLGovernor
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.rtm.rl_governor import RLGovernor
from repro.sim import tablepath
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workload.fft import fft_application
from repro.workload.video import mpeg4_application

numpy = pytest.importorskip("numpy")

#: Closed-loop governor factories (no static schedule; observation-driven).
CLOSED_LOOP_GOVERNORS = {
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "rl": RLGovernor,
    "rl-multicore": MultiCoreRLGovernor,
    "shen-rl-upd": ShenRLGovernor,
    "multicore-dvfs": MultiCoreDVFSGovernor,
}

FLOAT_FIELDS = (
    "busy_time_s",
    "overhead_time_s",
    "frame_time_s",
    "interval_s",
    "deadline_s",
    "energy_j",
    "average_power_w",
    "measured_power_w",
    "temperature_c",
)


def _run_both(factory, application, **config_kwargs):
    """Run ``application`` under ``factory()`` on both engines."""
    scalar_governor = factory()
    scalar_engine = SimulationEngine(
        build_a15_cluster(),
        SimulationConfig(prefer_fast_path=False, **config_kwargs),
    )
    scalar = scalar_engine.run(application, scalar_governor)
    assert not scalar_engine.last_used_table_path

    table_governor = factory()
    table_engine = SimulationEngine(
        build_a15_cluster(),
        SimulationConfig(prefer_fast_path=True, **config_kwargs),
    )
    table = table_engine.run(application, table_governor)
    assert table_engine.last_used_table_path
    assert not table_engine.last_used_fast_path
    return scalar, table, scalar_governor, table_governor, table_engine


def _assert_frame_by_frame_equivalent(scalar, table):
    assert table.num_frames == scalar.num_frames
    assert table.governor_name == scalar.governor_name
    assert table.application_name == scalar.application_name
    for table_record, scalar_record in zip(table.records, scalar.records):
        assert table_record.index == scalar_record.index
        # The decision trajectory must be *identical*, not merely close.
        assert table_record.operating_index == scalar_record.operating_index
        assert table_record.frequency_mhz == scalar_record.frequency_mhz
        assert table_record.cycles_per_core == scalar_record.cycles_per_core
        assert table_record.explored == scalar_record.explored
        for field in FLOAT_FIELDS:
            assert getattr(table_record, field) == pytest.approx(
                getattr(scalar_record, field), rel=1e-9, abs=1e-15
            ), field
    scalar_misses = [r.index for r in scalar.records if not r.met_deadline]
    table_misses = [r.index for r in table.records if not r.met_deadline]
    assert table_misses == scalar_misses
    assert table.total_energy_j == pytest.approx(scalar.total_energy_j, rel=1e-9)
    assert table.total_time_s == pytest.approx(scalar.total_time_s, rel=1e-9)


class TestTablePathEquivalence:
    @pytest.mark.parametrize("name", sorted(CLOSED_LOOP_GOVERNORS))
    def test_matches_scalar_engine_frame_by_frame(self, name):
        application = mpeg4_application(num_frames=400, seed=5)
        scalar, table, _, _, _ = _run_both(CLOSED_LOOP_GOVERNORS[name], application)
        _assert_frame_by_frame_equivalent(scalar, table)

    @pytest.mark.parametrize("name", sorted(CLOSED_LOOP_GOVERNORS))
    def test_matches_on_fft_without_deadline_padding(self, name):
        application = fft_application(num_frames=150, seed=2)
        scalar, table, _, _, _ = _run_both(
            CLOSED_LOOP_GOVERNORS[name], application, idle_until_deadline=False
        )
        _assert_frame_by_frame_equivalent(scalar, table)

    @pytest.mark.parametrize("name", ["rl", "rl-multicore", "shen-rl-upd"])
    def test_learning_state_identical(self, name):
        """Exploration counts, convergence epochs and final Q-tables match."""
        application = mpeg4_application(num_frames=600, seed=7)
        scalar, table, scalar_governor, table_governor, _ = _run_both(
            CLOSED_LOOP_GOVERNORS[name], application
        )
        assert table.exploration_count == scalar.exploration_count
        assert table.converged_epoch == scalar.converged_epoch
        assert scalar.exploration_count > 0  # the run actually explored
        scalar_qtable = scalar_governor.agent.qtable
        table_qtable = table_governor.agent.qtable
        for state in range(scalar_qtable.num_states):
            assert table_qtable.row(state) == scalar_qtable.row(state)
            for action in range(scalar_qtable.num_actions):
                assert table_qtable.visit_count(state, action) == (
                    scalar_qtable.visit_count(state, action)
                )
        assert scalar_governor.reward_history == table_governor.reward_history

    def test_matches_without_overhead_charging(self):
        application = mpeg4_application(num_frames=150, seed=9)
        scalar, table, _, _, _ = _run_both(
            OndemandGovernor, application, charge_governor_overhead=False
        )
        _assert_frame_by_frame_equivalent(scalar, table)
        assert table.total_overhead_s == 0.0

    def test_matches_with_sensor_noise(self):
        """The table path drives the real sensor, so seeded noise matches too."""
        application = mpeg4_application(num_frames=120, seed=3)

        def run(prefer):
            engine = SimulationEngine(
                build_a15_cluster(sensor_noise_w=0.05, seed=42),
                SimulationConfig(prefer_fast_path=prefer),
            )
            return engine.run(application, OndemandGovernor()), engine

        scalar, _ = run(False)
        table, table_engine = run(True)
        assert table_engine.last_used_table_path
        _assert_frame_by_frame_equivalent(scalar, table)

    def test_cluster_aggregate_state_synchronised(self):
        application = mpeg4_application(num_frames=300, seed=5)
        _, table, _, _, engine = _run_both(RLGovernor, application)
        cluster = engine.cluster
        assert cluster.total_energy_j == pytest.approx(table.total_energy_j, rel=1e-6)
        assert cluster.time_s == pytest.approx(table.total_time_s, rel=1e-9)
        assert cluster.current_index == table.records[-1].operating_index
        total_cycles = sum(r.total_cycles for r in table.records)
        pmu_cycles = sum(core.pmu.busy_cycles for core in cluster.cores)
        assert pmu_cycles == pytest.approx(total_cycles, rel=1e-9)

    def test_dvfs_transition_history_matches_scalar(self):
        application = mpeg4_application(num_frames=300, seed=5)

        def run(prefer):
            engine = SimulationEngine(
                build_a15_cluster(), SimulationConfig(prefer_fast_path=prefer)
            )
            engine.run(application, OndemandGovernor())
            return engine.cluster.dvfs

        scalar_dvfs = run(False)
        table_dvfs = run(True)
        assert table_dvfs.transition_count == scalar_dvfs.transition_count
        assert table_dvfs.transition_count > 0  # ondemand does transition
        for table_t, scalar_t in zip(table_dvfs.transitions, scalar_dvfs.transitions):
            assert table_t.from_index == scalar_t.from_index
            assert table_t.to_index == scalar_t.to_index
            assert table_t.timestamp_s == pytest.approx(
                scalar_t.timestamp_s, rel=1e-9, abs=1e-12
            )

    def test_back_to_back_runs_without_reset_match_scalar(self):
        """Persistent sensor/DVFS/clock state carries across runs identically."""
        application = mpeg4_application(num_frames=100, seed=3)

        def run(prefer):
            engine = SimulationEngine(
                build_a15_cluster(), SimulationConfig(prefer_fast_path=prefer)
            )
            engine.run(application, OndemandGovernor())
            second = engine.run(application, OndemandGovernor(), reset_cluster=False)
            return second, engine

        scalar, scalar_engine = run(False)
        table, table_engine = run(True)
        assert table_engine.last_used_table_path
        _assert_frame_by_frame_equivalent(scalar, table)
        assert table_engine.cluster.time_s == scalar_engine.cluster.time_s
        assert table_engine.cluster.current_index == scalar_engine.cluster.current_index

    def test_history_recording_matches_scalar(self):
        application = mpeg4_application(num_frames=80, seed=6)

        def run(prefer):
            engine = SimulationEngine(
                build_a15_cluster(record_history=True),
                SimulationConfig(prefer_fast_path=prefer),
            )
            engine.run(application, OndemandGovernor())
            return engine.cluster

        scalar_cluster = run(False)
        table_cluster = run(True)
        assert table_cluster.power_sensor.history_len == (
            scalar_cluster.power_sensor.history_len
        )
        assert len(table_cluster.energy_meter.intervals) == len(
            scalar_cluster.energy_meter.intervals
        )


class TestTablePathSelection:
    def test_static_governors_still_take_vectorised_path(self):
        engine = SimulationEngine(build_a15_cluster())
        engine.run(mpeg4_application(num_frames=30, seed=1), OracleGovernor())
        assert engine.last_used_fast_path
        assert not engine.last_used_table_path

    def test_thermal_enabled_cluster_falls_back_to_scalar(self):
        cluster = build_a15_cluster(enable_thermal=True)
        assert not tablepath.table_path_eligible(cluster)
        engine = SimulationEngine(cluster)
        engine.run(mpeg4_application(num_frames=30, seed=1), OndemandGovernor())
        assert not engine.last_used_table_path
        assert not engine.last_used_fast_path

    def test_prefer_fast_path_false_forces_scalar(self):
        engine = SimulationEngine(
            build_a15_cluster(), SimulationConfig(prefer_fast_path=False)
        )
        engine.run(mpeg4_application(num_frames=30, seed=1), OndemandGovernor())
        assert not engine.last_used_table_path

    def test_numpy_missing_falls_back_to_scalar(self, monkeypatch):
        from repro.sim import fastpath

        monkeypatch.setattr(tablepath, "_np", None)
        monkeypatch.setattr(fastpath, "_np", None)
        cluster = build_a15_cluster()
        assert not tablepath.table_path_eligible(cluster)
        engine = SimulationEngine(cluster)
        result = engine.run(mpeg4_application(num_frames=30, seed=1), OndemandGovernor())
        assert not engine.last_used_table_path
        assert result.num_frames == 30
        with pytest.raises(SimulationError):
            tablepath.simulate_closed_loop(
                cluster,
                mpeg4_application(num_frames=5, seed=1),
                OndemandGovernor(),
                SimulationConfig(),
            )

    def test_thermal_enabled_simulate_closed_loop_rejected(self):
        cluster = build_a15_cluster(enable_thermal=True)
        with pytest.raises(SimulationError):
            tablepath.simulate_closed_loop(
                cluster,
                mpeg4_application(num_frames=5, seed=1),
                OndemandGovernor(),
                SimulationConfig(),
            )


class TestWorkloadTable:
    def _table(self, cluster, application, config=None):
        return tablepath.precompute_tables(
            cluster, application, config or SimulationConfig()
        )

    def test_matches_validates_cluster_physics(self):
        application = mpeg4_application(num_frames=20, seed=1)
        cluster = build_a15_cluster()
        tables = self._table(cluster, application)
        assert tables.matches(cluster, idle_until_deadline=True)
        assert not tables.matches(cluster, idle_until_deadline=False)
        other = build_a15_cluster()
        other.idle_at_min_opp = False
        assert not tables.matches(other, idle_until_deadline=True)
        smaller = build_a15_cluster(num_cores=2)
        assert not tables.matches(smaller, idle_until_deadline=True)

    def test_mismatched_tables_are_rebuilt_not_trusted(self):
        """A wrong-shaped cached table degrades to a rebuild, never bad data."""
        application = mpeg4_application(num_frames=40, seed=2)
        other_app = mpeg4_application(num_frames=20, seed=2)
        cluster = build_a15_cluster()
        stale = self._table(cluster, other_app)

        engine = SimulationEngine(
            build_a15_cluster(), table_provider=lambda c, a, cfg: stale
        )
        table_result = engine.run(application, OndemandGovernor())
        assert engine.last_used_table_path

        scalar = SimulationEngine(
            build_a15_cluster(), SimulationConfig(prefer_fast_path=False)
        ).run(application, OndemandGovernor())
        _assert_frame_by_frame_equivalent(scalar, table_result)

    def test_batch_energy_matches_execute_workload(self):
        """Table entries equal the scalar execute_workload outputs bit for bit."""
        application = mpeg4_application(num_frames=25, seed=4)
        cluster = build_a15_cluster()
        tables = self._table(cluster, application)
        num_cores = cluster.num_cores
        for frame_index, frame in enumerate(application):
            per_core = frame.cycles_per_core(num_cores)
            for point_index in (0, len(cluster.vf_table) // 2, len(cluster.vf_table) - 1):
                cluster.reset(point_index)
                execution = cluster.execute_workload(
                    per_core, minimum_interval_s=frame.deadline_s
                )
                busy = tables.max_cycles[frame_index] * (
                    tables.seconds_per_cycle[point_index]
                )
                assert busy == max(
                    core.busy_time_s for core in execution.core_results
                )
                assert tables.interval[frame_index, point_index] == execution.duration_s
                assert tables.energy[frame_index, point_index] == execution.energy_j

    def test_requires_numpy_and_disabled_thermal(self, monkeypatch):
        application = mpeg4_application(num_frames=5, seed=1)
        thermal_cluster = build_a15_cluster(enable_thermal=True)
        cycles = [f.cycles_per_core(4) for f in application]
        deadlines = [f.deadline_s for f in application]
        with pytest.raises(PlatformError):
            thermal_cluster.execute_workload_table(cycles, deadlines)
        cluster = build_a15_cluster()
        with pytest.raises(PlatformError):
            cluster.execute_workload_table(cycles, deadlines[:-1])

    def test_power_table_matches_core_power(self):
        cluster = build_a15_cluster()
        temperature = cluster.thermal_model.temperature_c
        busy, idle = cluster.power_model.power_table(
            cluster.vf_table.points, temperature
        )
        for index in range(len(cluster.vf_table)):
            assert busy[index] == cluster.core_power_w(index, True, temperature)
            assert idle[index] == cluster.core_power_w(index, False, temperature)


class TestColumnarResults:
    def _table_result(self, num_frames=60):
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(
            mpeg4_application(num_frames=num_frames, seed=3), OndemandGovernor()
        )
        assert engine.last_used_table_path
        return result

    def test_records_materialise_lazily(self):
        result = self._table_result()
        assert result.columns is not None
        assert result._records is None  # nothing materialised yet
        assert result.num_frames == 60  # totals do not materialise
        assert result.total_energy_j > 0
        assert result._records is None  # aggregates read the columns
        records = result.records
        assert len(records) == 60
        assert result.records is records  # cached after first access
        # Materialisation hands authority to the list: the columns are gone
        # and aggregates now reflect in-place mutation of the records.
        assert result.columns is None

    def test_to_arrays_shapes_and_values(self):
        result = self._table_result()
        arrays = result.to_arrays()
        assert arrays["energy_j"].shape == (60,)
        assert arrays["cycles_per_core"].shape == (60, 4)
        assert float(arrays["energy_j"].sum()) == pytest.approx(
            result.total_energy_j, rel=1e-12
        )
        record_energies = [r.energy_j for r in result.records]
        assert arrays["energy_j"].tolist() == record_energies

    def test_json_round_trip(self):
        from repro.sim.results import SimulationResult

        result = self._table_result(20)
        clone = SimulationResult.from_dict(result.to_dict())
        assert clone == result

    def test_window_and_append_compatibility(self):
        result = self._table_result(30)
        head = result.window(0, 10)
        assert head.num_frames == 10
        # Appending after materialisation keeps totals consistent.
        extra = result.records[0]
        result.records.append(extra)
        assert result.num_frames == 31
        assert result.total_energy_j == pytest.approx(
            sum(r.energy_j for r in result.records)
        )

    def test_in_place_record_replacement_reflected(self):
        """After materialisation the record list is the single source of truth."""
        from dataclasses import replace

        result = self._table_result(10)
        original_total = result.total_energy_j
        result.records[0] = replace(result.records[0], energy_j=1000.0)
        assert result.total_energy_j != original_total
        assert result.total_energy_j == pytest.approx(
            sum(r.energy_j for r in result.records)
        )
        assert result.to_arrays()["energy_j"][0] == 1000.0

    def test_summarize_result_matches_summarize_records(self):
        from repro.sim.metrics import summarize_records, summarize_result

        result = self._table_result()
        from_arrays = summarize_result(result)
        from_records = summarize_records(result.records)
        assert from_arrays.num_frames == from_records.num_frames
        assert from_arrays.total_energy_j == pytest.approx(from_records.total_energy_j)
        assert from_arrays.deadline_miss_ratio == from_records.deadline_miss_ratio
        assert from_arrays.mean_slack_ratio == pytest.approx(from_records.mean_slack_ratio)
        assert from_arrays.dvfs_changes == from_records.dvfs_changes
        assert from_arrays.exploration_epochs == from_records.exploration_epochs


class TestCampaignTableCache:
    def test_scenarios_sharing_application_reuse_tables(self):
        from repro.campaign import executor as campaign_executor
        from repro.campaign.spec import CampaignSpec, FactorySpec

        campaign_executor._TABLE_CACHE.clear()
        campaign = CampaignSpec.from_grid(
            name="cache-test",
            applications=[FactorySpec.of("mpeg4", num_frames=40)],
            governors=[FactorySpec.of("ondemand"), FactorySpec.of("conservative")],
            seeds=[11],
        )
        store = campaign_executor.run_campaign(campaign)
        assert len(campaign_executor._TABLE_CACHE) == 1  # one shared entry
        assert all(outcome.ok for outcome in store)

        # Cached-table results are identical to scalar-engine results.
        scalar = SimulationEngine(
            build_a15_cluster(), SimulationConfig(prefer_fast_path=False)
        ).run(mpeg4_application(num_frames=40, seed=11), OndemandGovernor())
        cached = store.outcome("ondemand").result
        _assert_frame_by_frame_equivalent(scalar, cached)

    def test_cache_is_bounded(self):
        from repro.campaign import executor as campaign_executor
        from repro.campaign.spec import CampaignSpec, FactorySpec

        campaign_executor._TABLE_CACHE.clear()
        campaign = CampaignSpec.from_grid(
            name="cache-bound-test",
            applications=[FactorySpec.of("mpeg4", num_frames=10)],
            governors=[FactorySpec.of("ondemand")],
            seeds=list(range(campaign_executor._TABLE_CACHE_MAX_ENTRIES + 3)),
        )
        campaign_executor.run_campaign(campaign)
        assert (
            len(campaign_executor._TABLE_CACHE)
            <= campaign_executor._TABLE_CACHE_MAX_ENTRIES
        )


class TestSensorFastPath:
    def test_measure_w_matches_measure(self):
        from repro.platform.sensors import PowerSensor

        a, b = PowerSensor(noise_stddev_w=0.01, seed=3), PowerSensor(
            noise_stddev_w=0.01, seed=3
        )
        powers = [1.0, 2.5, 0.013, 4.2, 3.3]
        times = [0.04 * (i + 1) for i in range(5)]
        readings = [a.measure(p, t) for p, t in zip(powers, times)]
        floats = [b.measure_w(p, t) for p, t in zip(powers, times)]
        assert [r.power_w for r in readings] == floats
        assert a.last_reading == b.last_reading

    def test_holdover_preserved(self):
        from repro.platform.sensors import PowerSensor

        sensor = PowerSensor(sample_period_s=0.01)
        first = sensor.measure_w(1.0, 0.0)
        held = sensor.measure_w(5.0, 0.004)  # within the conversion period
        assert held == first
        assert sensor.last_reading.timestamp_s == 0.0
