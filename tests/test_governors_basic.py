"""Unit tests for the static and reactive baseline governors."""

import pytest

from repro.errors import GovernorError
from repro.governors.base import StaticGovernor, observed_load
from repro.governors.conservative import ConservativeGovernor, ConservativeParameters
from repro.governors.ondemand import OndemandGovernor, OndemandParameters
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.userspace import UserspaceGovernor
from repro.rtm.governor import EpochObservation, FrameHint


def make_observation(
    busy_time_s: float,
    interval_s: float,
    operating_index: int = 18,
    reference_time_s: float = 0.040,
    epoch_index: int = 0,
) -> EpochObservation:
    return EpochObservation(
        epoch_index=epoch_index,
        cycles_per_core=(1e7, 1e7, 1e7, 1e7),
        busy_time_s=busy_time_s,
        interval_s=interval_s,
        reference_time_s=reference_time_s,
        operating_index=operating_index,
        energy_j=0.1,
        measured_power_w=2.0,
    )


class TestObservedLoad:
    def test_load_is_busy_over_interval(self):
        assert observed_load(make_observation(0.020, 0.040)) == pytest.approx(0.5)

    def test_load_clamped_to_unit_interval(self):
        assert observed_load(make_observation(0.080, 0.040)) == 1.0

    def test_zero_interval(self):
        assert observed_load(make_observation(0.0, 0.0)) == 0.0


class TestStaticGovernors:
    def test_performance_always_fastest(self, platform_info, requirement_25fps):
        governor = PerformanceGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert governor.decide(None) == platform_info.num_actions - 1
        assert governor.decide(make_observation(0.01, 0.04)) == platform_info.num_actions - 1

    def test_powersave_always_slowest(self, platform_info, requirement_25fps):
        governor = PowersaveGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert governor.decide(None) == 0
        assert governor.decide(make_observation(0.05, 0.05)) == 0

    def test_userspace_holds_and_changes_index(self, platform_info, requirement_25fps):
        governor = UserspaceGovernor(index=3)
        governor.setup(platform_info, requirement_25fps)
        assert governor.decide(None) == 3
        governor.set_frequency(1.5e9)
        assert governor.decide(None) == platform_info.vf_table.nearest_index_for_frequency(1.5e9)
        with pytest.raises(GovernorError):
            governor.set_index(-1)

    def test_unconfigured_static_governor_raises(self, platform_info, requirement_25fps):
        governor = StaticGovernor()
        governor.setup(platform_info, requirement_25fps)
        with pytest.raises(GovernorError):
            governor.decide(None)

    def test_governor_used_before_setup_raises(self):
        with pytest.raises(GovernorError):
            PerformanceGovernor().decide(None)

    def test_non_learning_governors_report_no_learning(self, platform_info, requirement_25fps):
        governor = PerformanceGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert governor.exploration_count == 0
        assert governor.converged_epoch is None


class TestOndemand:
    def test_starts_at_maximum(self, platform_info, requirement_25fps):
        governor = OndemandGovernor()
        governor.setup(platform_info, requirement_25fps)
        assert governor.decide(None) == platform_info.num_actions - 1

    def test_high_load_jumps_to_maximum(self, platform_info, requirement_25fps):
        governor = OndemandGovernor()
        governor.setup(platform_info, requirement_25fps)
        observation = make_observation(0.038, 0.040, operating_index=8)
        assert governor.decide(observation) == platform_info.num_actions - 1

    def test_low_load_scales_down_proportionally(self, platform_info, requirement_25fps):
        governor = OndemandGovernor()
        governor.setup(platform_info, requirement_25fps)
        # Load 0.4 at 2 GHz -> target roughly 2 GHz * 0.4 / 0.8 = 1 GHz.
        observation = make_observation(0.016, 0.040, operating_index=18)
        index = governor.decide(observation)
        assert platform_info.vf_table[index].frequency_hz == pytest.approx(1.0e9, rel=0.11)

    def test_never_drops_below_minimum(self, platform_info, requirement_25fps):
        governor = OndemandGovernor()
        governor.setup(platform_info, requirement_25fps)
        observation = make_observation(0.0001, 0.040, operating_index=0)
        assert governor.decide(observation) >= 0

    def test_sampling_down_factor_holds_maximum(self, platform_info, requirement_25fps):
        governor = OndemandGovernor(OndemandParameters(sampling_down_factor=3))
        governor.setup(platform_info, requirement_25fps)
        governor.decide(make_observation(0.039, 0.040))  # jump to max, hold counter set
        index = governor.decide(make_observation(0.010, 0.040, operating_index=18))
        assert index == platform_info.num_actions - 1

    def test_invalid_parameters_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            OndemandParameters(up_threshold=0.0)
        with pytest.raises(ConfigurationError):
            OndemandParameters(sampling_down_factor=0)


class TestConservative:
    def test_steps_up_on_high_load(self, platform_info, requirement_25fps):
        governor = ConservativeGovernor()
        governor.setup(platform_info, requirement_25fps)
        observation = make_observation(0.039, 0.040, operating_index=5)
        assert governor.decide(observation) == 6

    def test_steps_down_on_low_load(self, platform_info, requirement_25fps):
        governor = ConservativeGovernor()
        governor.setup(platform_info, requirement_25fps)
        observation = make_observation(0.002, 0.040, operating_index=5)
        assert governor.decide(observation) == 4

    def test_holds_on_moderate_load(self, platform_info, requirement_25fps):
        governor = ConservativeGovernor()
        governor.setup(platform_info, requirement_25fps)
        observation = make_observation(0.020, 0.040, operating_index=5)
        assert governor.decide(observation) == 5

    def test_clamped_at_table_edges(self, platform_info, requirement_25fps):
        governor = ConservativeGovernor()
        governor.setup(platform_info, requirement_25fps)
        low = make_observation(0.001, 0.040, operating_index=0)
        assert governor.decide(low) == 0
        high = make_observation(0.040, 0.040, operating_index=18)
        assert governor.decide(high) == 18

    def test_invalid_parameters_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ConservativeParameters(down_threshold=0.9, up_threshold=0.8)


class TestOracle:
    def test_selects_slowest_deadline_meeting_point(self, platform_info, requirement_25fps):
        governor = OracleGovernor(guard_band=0.0)
        governor.setup(platform_info, requirement_25fps)
        hint = FrameHint(cycles_per_core=(3.0e7, 2.0e7, 1.0e7, 1.0e7), deadline_s=0.040)
        index = governor.decide(None, hint)
        point = platform_info.vf_table[index]
        assert point.time_for_cycles(3.0e7) <= 0.040
        if index > 0:
            slower = platform_info.vf_table[index - 1]
            assert slower.time_for_cycles(3.0e7) > 0.040

    def test_guard_band_selects_faster_point_when_borderline(self, platform_info, requirement_25fps):
        tight_hint = FrameHint(cycles_per_core=(4.0e7, 0.0, 0.0, 0.0), deadline_s=0.040)
        no_guard = OracleGovernor(guard_band=0.0)
        no_guard.setup(platform_info, requirement_25fps)
        with_guard = OracleGovernor(guard_band=0.05)
        with_guard.setup(platform_info, requirement_25fps)
        assert with_guard.decide(None, tight_hint) >= no_guard.decide(None, tight_hint)

    def test_requires_hint(self, platform_info, requirement_25fps):
        governor = OracleGovernor()
        governor.setup(platform_info, requirement_25fps)
        with pytest.raises(GovernorError):
            governor.decide(None, None)

    def test_invalid_guard_band_rejected(self):
        with pytest.raises(GovernorError):
            OracleGovernor(guard_band=1.5)
