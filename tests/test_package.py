"""Package-level tests: imports, version metadata and the public API surface."""

import importlib

import pytest

import repro


class TestPackageMetadata:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_paper_identity(self):
        assert "Run-Time Energy Optimisation" in repro.PAPER_TITLE
        assert repro.PAPER_VENUE == "DATE 2017"

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.platform",
            "repro.workload",
            "repro.rtm",
            "repro.governors",
            "repro.sim",
            "repro.experiments",
            "repro.analysis",
        ],
    )
    def test_subpackage_imports_cleanly(self, module):
        imported = importlib.import_module(module)
        assert imported is not None
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module}.{name} listed in __all__ but missing"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import (
            ConfigurationError,
            GovernorError,
            PlatformError,
            ReproError,
            SimulationError,
            StateSpaceError,
            WorkloadError,
        )

        for error_type in (
            ConfigurationError,
            GovernorError,
            PlatformError,
            SimulationError,
            StateSpaceError,
            WorkloadError,
        ):
            assert issubclass(error_type, ReproError)

    def test_invalid_operating_point_is_platform_error(self):
        from repro.errors import InvalidOperatingPointError, PlatformError

        assert issubclass(InvalidOperatingPointError, PlatformError)


class TestQuickstartDocstringExample:
    def test_module_docstring_example_runs(self):
        """The example shown in the package docstring must actually work."""
        from repro import build_a15_cluster, mpeg4_application
        from repro.rtm import MultiCoreRLGovernor
        from repro.sim import SimulationEngine

        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(mpeg4_application(num_frames=120), MultiCoreRLGovernor())
        assert round(result.normalized_performance, 2) <= 1.1
