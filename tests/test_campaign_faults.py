"""Tests for the deterministic fault-injection harness.

The service's headline guarantee is that *any* fault schedule — worker
crashes, dropped/duplicated responses, heartbeat loss, coordinator
restarts — yields a merged result bit-identical to an unsharded serial
run.  These tests drive every fault kind individually, all of them at
once, and a seeded random sweep, comparing JSON bytes each time.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    FactorySpec,
    RetryPolicy,
    run_campaign,
)
from repro.campaign.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    run_with_faults,
)
from repro.errors import ConfigurationError

#: Small scale so the whole module stays fast.
FRAMES = 60


@pytest.fixture(scope="module")
def campaign():
    return CampaignSpec.from_grid(
        "faults",
        applications=[FactorySpec.of("mpeg4", num_frames=FRAMES)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "oracle": FactorySpec.of("oracle"),
        },
        seeds=(1, 2),
    )


@pytest.fixture(scope="module")
def serial_store(campaign):
    return run_campaign(campaign)


class TestScheduleConstruction:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent(kind="meteor-strike", at=1)
        with pytest.raises(ConfigurationError, match=">= 1"):
            FaultEvent(kind="crash-worker", at=0)

    def test_random_is_deterministic(self):
        first = FaultSchedule.random(seed=42)
        second = FaultSchedule.random(seed=42)
        assert first.events == second.events
        assert FaultSchedule.random(seed=43).events != first.events

    def test_random_respects_bounds(self):
        schedule = FaultSchedule.random(seed=7, count=10, horizon=2)
        assert len(schedule.events) == 10
        assert all(event.kind in FAULT_KINDS for event in schedule.events)
        assert all(1 <= event.at <= 2 for event in schedule.events)


class TestSingleFaultKinds:
    def test_worker_crash_requeues_and_matches_serial(self, campaign, serial_store):
        report = run_with_faults(
            campaign, FaultSchedule.of(FaultEvent("crash-worker", at=1))
        )
        assert [event.kind for event in report.fired] == ["crash-worker"]
        assert report.coordinator_stats["requeued"] >= 1
        assert report.result.to_json() == serial_store.to_json()

    def test_dropped_response_is_retried(self, campaign, serial_store):
        report = run_with_faults(
            campaign, FaultSchedule.of(FaultEvent("drop-response", at=1))
        )
        assert [event.kind for event in report.fired] == ["drop-response"]
        assert any("dropped" in line for line in report.events_log)
        assert report.result.to_json() == serial_store.to_json()

    def test_duplicate_response_is_acknowledged(self, campaign, serial_store):
        report = run_with_faults(
            campaign, FaultSchedule.of(FaultEvent("duplicate-response", at=2))
        )
        assert report.duplicates_acknowledged == 1
        assert report.coordinator_stats["duplicates"] == 1
        assert report.result.to_json() == serial_store.to_json()

    def test_heartbeat_loss_requeues_first_wins(self, campaign, serial_store):
        report = run_with_faults(
            campaign, FaultSchedule.of(FaultEvent("lose-heartbeats", at=1))
        )
        assert any("heartbeats lost" in line for line in report.events_log)
        assert report.coordinator_stats["requeued"] >= 1
        assert report.result.to_json() == serial_store.to_json()

    def test_coordinator_restart_resumes_from_journal(self, campaign, serial_store):
        report = run_with_faults(
            campaign, FaultSchedule.of(FaultEvent("restart-coordinator", at=1))
        )
        assert report.restarts == 1
        assert report.result.to_json() == serial_store.to_json()

    def test_all_fault_kinds_together(self, campaign, serial_store):
        schedule = FaultSchedule.of(
            FaultEvent("lose-heartbeats", at=1),
            FaultEvent("crash-worker", at=1),
            FaultEvent("drop-response", at=1),
            FaultEvent("duplicate-response", at=2),
            FaultEvent("restart-coordinator", at=1),
        )
        report = run_with_faults(campaign, schedule)
        assert sorted(event.kind for event in report.fired) == sorted(FAULT_KINDS)
        assert report.result.to_json() == serial_store.to_json()


class TestRandomSweep:
    @pytest.mark.parametrize("seed", range(5))
    def test_seeded_schedule_is_bit_identical(self, campaign, serial_store, seed):
        report = run_with_faults(campaign, FaultSchedule.random(seed))
        assert report.result.to_json() == serial_store.to_json()


class TestElasticityAndExhaustion:
    def test_all_workers_dead_respawns(self, campaign, serial_store):
        schedule = FaultSchedule.of(
            FaultEvent("crash-worker", at=1),
            FaultEvent("crash-worker", at=2),
        )
        report = run_with_faults(campaign, schedule, num_workers=2)
        assert report.respawned >= 1
        assert report.result.to_json() == serial_store.to_json()

    def test_exhausted_delivery_budget_records_failure(self, campaign):
        # Scenarios finish inside their lease (work_time < lease_timeout),
        # so only the crashed worker's scenario consumes its single
        # delivery attempt without a result and fails terminally.
        report = run_with_faults(
            campaign,
            FaultSchedule.of(FaultEvent("crash-worker", at=1)),
            retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
            work_time_s=2.0,
        )
        failures = report.result.failed()
        assert report.coordinator_stats["expired_failed"] == len(failures) == 1
        assert "lease expired" in failures[0].error

    def test_fault_free_schedule_matches_serial(self, campaign, serial_store):
        report = run_with_faults(campaign, FaultSchedule.of(), num_workers=3)
        assert report.fired == []
        assert report.result.to_json() == serial_store.to_json()

    def test_worker_count_validated(self, campaign):
        with pytest.raises(ConfigurationError):
            run_with_faults(campaign, FaultSchedule.of(), num_workers=0)
