"""Unit tests for the application-facing performance-requirement API."""

import pytest

from repro.errors import ConfigurationError
from repro.rtm.api import RuntimeManagerAPI


class TestRuntimeManagerAPI:
    def test_register_and_query(self):
        api = RuntimeManagerAPI()
        target = api.register("decoder", frames_per_second=25.0)
        assert target.tref_s == pytest.approx(0.040)
        assert api.num_applications == 1
        assert api.target_for("decoder").application_name == "decoder"

    def test_explicit_reference_time(self):
        api = RuntimeManagerAPI()
        target = api.register("ffmpeg", frames_per_second=25.0, reference_time_s=0.031)
        assert target.tref_s == pytest.approx(0.031)

    def test_effective_requirement_is_the_tightest(self):
        api = RuntimeManagerAPI()
        api.register("video", frames_per_second=24.0)
        api.register("fft", frames_per_second=32.0)
        assert api.effective_requirement().tref_s == pytest.approx(1.0 / 32.0)

    def test_re_registration_replaces_target(self):
        api = RuntimeManagerAPI()
        api.register("video", frames_per_second=24.0)
        api.register("video", frames_per_second=30.0)
        assert api.num_applications == 1
        assert api.target_for("video").tref_s == pytest.approx(1.0 / 30.0)
        assert len(api.registration_history) == 2

    def test_unregister(self):
        api = RuntimeManagerAPI()
        api.register("video", 24.0)
        api.unregister("video")
        assert api.num_applications == 0
        api.unregister("never-registered")  # silently ignored

    def test_unknown_application_raises(self):
        api = RuntimeManagerAPI()
        with pytest.raises(ConfigurationError):
            api.target_for("ghost")

    def test_effective_requirement_without_targets_raises(self):
        with pytest.raises(ConfigurationError):
            RuntimeManagerAPI().effective_requirement()

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeManagerAPI().register("", 25.0)
