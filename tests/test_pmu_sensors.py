"""Unit tests for the PMU, power-sensor and energy-meter models."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.pmu import PerformanceMonitoringUnit, PMUSample
from repro.platform.sensors import EnergyMeter, PowerSensor


class TestPMU:
    def test_busy_accounting(self):
        pmu = PerformanceMonitoringUnit()
        pmu.account_busy(cycles=1e6, duration_s=0.001)
        sample = pmu.sample()
        assert sample.cycles == pytest.approx(1e6)
        assert sample.idle_cycles == 0.0
        assert sample.utilisation == pytest.approx(1.0)

    def test_idle_accounting_and_utilisation(self):
        pmu = PerformanceMonitoringUnit()
        pmu.account_busy(cycles=3e6, duration_s=0.003)
        pmu.account_idle(cycles=1e6, duration_s=0.001)
        sample = pmu.sample()
        assert sample.total_cycles == pytest.approx(4e6)
        assert sample.utilisation == pytest.approx(0.75)

    def test_delta_between_samples(self):
        pmu = PerformanceMonitoringUnit()
        pmu.account_busy(1e6, 0.001)
        first = pmu.sample()
        pmu.account_busy(2e6, 0.002)
        second = pmu.sample()
        delta = second.delta(first)
        assert delta.cycles == pytest.approx(2e6)
        assert delta.timestamp_s == pytest.approx(0.002)

    def test_delta_requires_chronological_order(self):
        pmu = PerformanceMonitoringUnit()
        pmu.account_busy(1e6, 0.001)
        first = pmu.sample()
        pmu.account_busy(1e6, 0.001)
        second = pmu.sample()
        with pytest.raises(ValueError):
            first.delta(second)

    def test_reset(self):
        pmu = PerformanceMonitoringUnit()
        pmu.account_busy(1e6, 0.001)
        pmu.reset()
        assert pmu.sample().cycles == 0.0
        assert pmu.elapsed_time_s == 0.0

    def test_negative_values_rejected(self):
        pmu = PerformanceMonitoringUnit()
        with pytest.raises(ValueError):
            pmu.account_busy(-1.0, 0.001)
        with pytest.raises(ValueError):
            pmu.account_idle(1.0, -0.001)

    def test_instructions_default_to_cycles(self):
        pmu = PerformanceMonitoringUnit()
        pmu.account_busy(cycles=5e5, duration_s=0.001)
        assert pmu.sample().instructions == pytest.approx(5e5)

    def test_empty_sample_utilisation_is_zero(self):
        assert PMUSample(0.0, 0.0, 0.0, 0.0).utilisation == 0.0


class TestPowerSensor:
    def test_quantisation(self):
        sensor = PowerSensor(sample_period_s=0.001, resolution_w=0.01, noise_stddev_w=0.0)
        reading = sensor.measure(1.234, timestamp_s=0.0)
        assert reading.power_w == pytest.approx(1.23)

    def test_conversion_period_holds_previous_reading(self):
        sensor = PowerSensor(sample_period_s=0.010, resolution_w=0.0)
        first = sensor.measure(1.0, timestamp_s=0.0)
        held = sensor.measure(5.0, timestamp_s=0.005)
        assert held == first
        fresh = sensor.measure(5.0, timestamp_s=0.020)
        assert fresh.power_w == pytest.approx(5.0)

    def test_noise_is_reproducible_with_seed(self):
        readings = []
        for _ in range(2):
            sensor = PowerSensor(noise_stddev_w=0.05, seed=42, resolution_w=0.0)
            readings.append([sensor.measure(2.0, t * 0.02).power_w for t in range(5)])
        assert readings[0] == readings[1]

    def test_negative_power_rejected_and_clamped(self):
        sensor = PowerSensor(noise_stddev_w=0.0)
        with pytest.raises(ValueError):
            sensor.measure(-1.0, 0.0)
        # Even with heavy noise the reported power never goes negative.
        noisy = PowerSensor(noise_stddev_w=10.0, seed=1, resolution_w=0.0)
        assert all(noisy.measure(0.01, t * 0.02).power_w >= 0.0 for t in range(20))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSensor(sample_period_s=0.0)
        with pytest.raises(ConfigurationError):
            PowerSensor(resolution_w=-0.1)

    def test_history_recording_is_opt_in(self):
        # Default off: measurements do not accumulate history (memory growth
        # is unbounded over a campaign otherwise).
        sensor = PowerSensor()
        for t in range(5):
            sensor.measure(1.0, t * 0.02)
        assert sensor.history_len == 0
        assert sensor.history == ()
        assert sensor.last_reading is not None

        recording = PowerSensor(record_history=True)
        for t in range(5):
            recording.measure(1.0, t * 0.02)
        assert recording.history_len == 5
        assert isinstance(recording.history, tuple)

    def test_reset_clears_history(self):
        sensor = PowerSensor(record_history=True)
        sensor.measure(1.0, 0.0)
        assert sensor.history_len == 1
        sensor.reset()
        assert sensor.history == ()
        assert sensor.history_len == 0
        assert sensor.last_reading is None


class TestEnergyMeter:
    def test_integration(self):
        meter = EnergyMeter()
        meter.add_interval(power_w=2.0, duration_s=3.0)
        meter.add_interval(power_w=1.0, duration_s=1.0)
        assert meter.energy_j == pytest.approx(7.0)
        assert meter.elapsed_s == pytest.approx(4.0)
        assert meter.average_power_w == pytest.approx(7.0 / 4.0)

    def test_add_energy_lump(self):
        meter = EnergyMeter()
        meter.add_energy(0.5)
        assert meter.energy_j == pytest.approx(0.5)
        assert meter.average_power_w == 0.0

    def test_negative_values_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(ValueError):
            meter.add_interval(-1.0, 1.0)
        with pytest.raises(ValueError):
            meter.add_energy(-1.0)

    def test_reset(self):
        meter = EnergyMeter()
        meter.add_interval(1.0, 1.0)
        meter.reset()
        assert meter.energy_j == 0.0
        assert meter.elapsed_s == 0.0
