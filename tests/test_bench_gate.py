"""Tests for the CI bench regression gate (benchmarks/check_bench_regression.py)."""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "check_bench_regression.py",
)
_spec = importlib.util.spec_from_file_location("check_bench_regression", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def results(fast=100_000.0, scalar=10_000.0, cached=5_000.0, scenario="mpeg4/oracle"):
    return {
        "vectorized_fast_path": [
            {
                "scenario": scenario,
                "fast_frames_per_s": fast,
                "scalar_frames_per_s": scalar,
            }
        ],
        "tier1_power_cache": [
            {"scenario": "mpeg4/ondemand", "cached_frames_per_s": cached}
        ],
    }


class TestCompare:
    def test_identical_results_pass(self):
        assert gate.compare(results(), results(), tolerance=0.30) == []

    def test_within_tolerance_passes(self):
        current = results(fast=75_000.0)  # -25% with 30% tolerance
        assert gate.compare(current, results(), tolerance=0.30) == []

    def test_regression_beyond_tolerance_fails(self):
        current = results(fast=60_000.0)  # -40%
        failures = gate.compare(current, results(), tolerance=0.30)
        assert len(failures) == 1
        assert "mpeg4/oracle" in failures[0]
        assert "fast_frames_per_s" in failures[0]

    def test_faster_than_baseline_passes(self):
        assert gate.compare(results(fast=1e9), results(), tolerance=0.0) == []

    def test_every_gated_metric_checked(self):
        current = results(scalar=1.0, cached=1.0)
        failures = gate.compare(current, results(), tolerance=0.30)
        assert len(failures) == 2
        assert any("scalar_frames_per_s" in f for f in failures)
        assert any("cached_frames_per_s" in f for f in failures)

    def test_missing_scenario_fails(self):
        current = results()
        current["vectorized_fast_path"] = []
        failures = gate.compare(current, results(), tolerance=0.30)
        assert any("missing from current results" in f for f in failures)

    def test_scenarios_only_in_current_are_ignored(self):
        baseline = results()
        current = results()
        current["vectorized_fast_path"].append(
            {"scenario": "new/thing", "fast_frames_per_s": 1.0, "scalar_frames_per_s": 1.0}
        )
        assert gate.compare(current, baseline, tolerance=0.30) == []


class TestMain:
    def _write(self, path, data):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)

    def test_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        self._write(base, results())
        self._write(good, results())
        self._write(bad, results(fast=1.0))
        passing = gate.main([str(good), "--baseline", str(base)])
        assert passing == 0
        assert "PASS" in capsys.readouterr().out
        failing = gate.main([str(bad), "--baseline", str(base)])
        assert failing == 1
        assert "FAIL" in capsys.readouterr().err

    def test_tolerance_validated(self, tmp_path):
        path = tmp_path / "r.json"
        self._write(path, results())
        with pytest.raises(SystemExit):
            gate.main([str(path), "--baseline", str(path), "--tolerance", "1.5"])

    def test_committed_smoke_baseline_is_wellformed(self):
        baseline_path = os.path.join(
            os.path.dirname(_GATE_PATH), "BENCH_baseline_smoke.json"
        )
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        assert baseline["mode"] == "smoke"
        for section, metric in gate.GATED_METRICS:
            rows = baseline[section]
            if gate._section_skipped(baseline, section):
                # Optional-backend sections (jit_closed_loop on numba-less
                # baseline boxes) may be recorded empty, but only with an
                # explanatory <section>_note sibling.
                continue
            assert rows, f"baseline section {section} is empty"
            for row in rows:
                assert float(row[metric]) > 0
