"""Unit tests for the CMOS power model."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.odroid_xu3 import A15_VF_TABLE
from repro.platform.power import PowerBreakdown, PowerModel, PowerModelParameters


@pytest.fixture
def model() -> PowerModel:
    return PowerModel()


class TestPowerBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = PowerBreakdown(dynamic_w=1.0, static_w=0.5, uncore_w=0.25)
        assert breakdown.total_w == pytest.approx(1.75)

    def test_addition(self):
        a = PowerBreakdown(1.0, 0.5, 0.1)
        b = PowerBreakdown(2.0, 0.25, 0.0)
        combined = a + b
        assert combined.dynamic_w == pytest.approx(3.0)
        assert combined.static_w == pytest.approx(0.75)
        assert combined.uncore_w == pytest.approx(0.1)

    def test_scaling(self):
        scaled = PowerBreakdown(1.0, 1.0, 1.0).scaled(0.5)
        assert scaled.total_w == pytest.approx(1.5)


class TestParameters:
    def test_invalid_capacitance_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModelParameters(effective_capacitance_f=0.0)

    def test_invalid_idle_activity_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModelParameters(idle_activity_factor=1.5)

    def test_negative_leakage_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModelParameters(leakage_k1_a=-0.1)


class TestDynamicPower:
    def test_increases_with_frequency(self, model):
        slow, fast = A15_VF_TABLE[0], A15_VF_TABLE[-1]
        assert model.dynamic_power_w(fast, 1.0) > model.dynamic_power_w(slow, 1.0)

    def test_increases_with_utilisation(self, model):
        point = A15_VF_TABLE[10]
        assert model.dynamic_power_w(point, 1.0) > model.dynamic_power_w(point, 0.2)

    def test_idle_floor_is_nonzero(self, model):
        point = A15_VF_TABLE[10]
        assert model.dynamic_power_w(point, 0.0) > 0.0

    def test_utilisation_out_of_range_rejected(self, model):
        point = A15_VF_TABLE[0]
        with pytest.raises(ValueError):
            model.dynamic_power_w(point, 1.5)
        with pytest.raises(ValueError):
            model.dynamic_power_w(point, -0.1)

    def test_cubic_scaling_with_voltage_and_frequency(self, model):
        """P_dyn is proportional to V^2 * f, the DVFS cubic-saving mechanism."""
        slow, fast = A15_VF_TABLE[0], A15_VF_TABLE[-1]
        ratio = model.dynamic_power_w(fast, 1.0) / model.dynamic_power_w(slow, 1.0)
        expected = (fast.voltage_v ** 2 * fast.frequency_hz) / (
            slow.voltage_v ** 2 * slow.frequency_hz
        )
        assert ratio == pytest.approx(expected, rel=1e-9)


class TestStaticPower:
    def test_increases_with_voltage(self, model):
        assert model.static_power_w(A15_VF_TABLE[-1]) > model.static_power_w(A15_VF_TABLE[0])

    def test_increases_with_temperature(self, model):
        point = A15_VF_TABLE[10]
        assert model.static_power_w(point, 85.0) > model.static_power_w(point, 45.0)


class TestClusterPower:
    def test_cluster_power_scales_with_core_count(self, model):
        point = A15_VF_TABLE[12]
        one = model.cluster_power(point, [1.0])
        four = model.cluster_power(point, [1.0, 1.0, 1.0, 1.0])
        # Four busy cores burn roughly 4x the core power (uncore charged once).
        assert four.dynamic_w == pytest.approx(4 * one.dynamic_w)
        assert four.uncore_w == pytest.approx(one.uncore_w)

    def test_realistic_a15_cluster_power_range(self, model):
        """Four busy A15 cores at 2 GHz draw single-digit watts, idle well below 1 W."""
        busy = model.cluster_power(A15_VF_TABLE[-1], [1.0] * 4).total_w
        idle = model.cluster_power(A15_VF_TABLE[0], [0.0] * 4).total_w
        assert 3.0 < busy < 10.0
        assert idle < 1.0


class TestEnergy:
    def test_energy_is_power_times_time(self, model):
        point = A15_VF_TABLE[9]
        power = model.core_power(point, 1.0).total_w
        assert model.energy_j(point, 1.0, 2.0) == pytest.approx(2.0 * power)

    def test_negative_duration_rejected(self, model):
        with pytest.raises(ValueError):
            model.energy_j(A15_VF_TABLE[0], 1.0, -1.0)

    def test_race_to_idle_is_not_free(self, model):
        """Running a fixed cycle count at high V-F costs more energy than at low V-F.

        This is the convexity that makes the Oracle's slowest-deadline-meeting
        choice optimal.
        """
        cycles = 5e7
        slow, fast = A15_VF_TABLE[4], A15_VF_TABLE[-1]
        assert model.energy_for_cycles_j(fast, cycles) > model.energy_for_cycles_j(slow, cycles)

    def test_energy_for_cycles_monotone_in_frequency(self, model):
        cycles = 5e7
        energies = [model.energy_for_cycles_j(point, cycles) for point in A15_VF_TABLE]
        # Busy energy per fixed work is non-decreasing with the operating point
        # once voltage starts rising (allow equality for the flat-voltage region).
        assert energies[-1] > energies[0]
        for earlier, later in zip(energies[8:], energies[9:]):
            assert later >= earlier - 1e-12
