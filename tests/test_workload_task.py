"""Unit tests for the frame/application/thread-split workload abstractions."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.application import Application, PerformanceRequirement
from repro.workload.task import Frame
from repro.workload.threads import (
    DominantThreadSplit,
    EvenSplit,
    ImbalancedSplit,
    validate_split,
)


class TestFrame:
    def test_totals_and_critical_path(self):
        frame = Frame(index=0, thread_cycles=(1e6, 3e6, 2e6), deadline_s=0.04)
        assert frame.total_cycles == pytest.approx(6e6)
        assert frame.max_thread_cycles == pytest.approx(3e6)
        assert frame.num_threads == 3

    def test_cycles_per_core_round_robin_mapping(self):
        frame = Frame(index=0, thread_cycles=(1e6, 2e6, 3e6, 4e6, 5e6), deadline_s=0.04)
        per_core = frame.cycles_per_core(4)
        # Thread 4 wraps onto core 0.
        assert per_core == pytest.approx((6e6, 2e6, 3e6, 4e6))
        assert sum(per_core) == pytest.approx(frame.total_cycles)

    def test_cycles_per_core_more_cores_than_threads(self):
        frame = Frame(index=0, thread_cycles=(1e6,), deadline_s=0.04)
        per_core = frame.cycles_per_core(4)
        assert per_core == (1e6, 0.0, 0.0, 0.0)

    def test_required_frequency(self):
        frame = Frame(index=0, thread_cycles=(4e7, 4e7), deadline_s=0.04)
        assert frame.required_frequency_hz(2) == pytest.approx(1e9)

    def test_scaled(self):
        frame = Frame(index=1, thread_cycles=(1e6, 2e6), deadline_s=0.04, kind="P")
        doubled = frame.scaled(2.0)
        assert doubled.total_cycles == pytest.approx(6e6)
        assert doubled.kind == "P"
        with pytest.raises(WorkloadError):
            frame.scaled(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"index": -1, "thread_cycles": (1.0,), "deadline_s": 0.04},
            {"index": 0, "thread_cycles": (), "deadline_s": 0.04},
            {"index": 0, "thread_cycles": (-1.0,), "deadline_s": 0.04},
            {"index": 0, "thread_cycles": (1.0,), "deadline_s": 0.0},
        ],
    )
    def test_invalid_frames_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            Frame(**kwargs)

    def test_invalid_core_count_rejected(self):
        frame = Frame(index=0, thread_cycles=(1.0,), deadline_s=0.04)
        with pytest.raises(WorkloadError):
            frame.cycles_per_core(0)


class TestPerformanceRequirement:
    def test_tref_from_fps(self):
        assert PerformanceRequirement(25.0).tref_s == pytest.approx(0.040)

    def test_explicit_reference_time_overrides_fps(self):
        requirement = PerformanceRequirement(25.0, reference_time_s=0.031)
        assert requirement.tref_s == pytest.approx(0.031)

    def test_invalid_values_rejected(self):
        with pytest.raises(WorkloadError):
            PerformanceRequirement(0.0)
        with pytest.raises(WorkloadError):
            PerformanceRequirement(25.0, reference_time_s=-1.0)


class TestApplication:
    def _frames(self, count):
        return [
            Frame(index=i, thread_cycles=(1e6 * (i + 1),), deadline_s=0.04)
            for i in range(count)
        ]

    def test_basic_accessors(self):
        application = Application("demo", self._frames(5), PerformanceRequirement(25.0))
        assert len(application) == 5
        assert application.num_frames == 5
        assert application[2].index == 2
        assert application.reference_time_s == pytest.approx(0.040)
        assert application.total_cycles == pytest.approx(sum(1e6 * (i + 1) for i in range(5)))

    def test_frames_must_be_consecutively_numbered(self):
        frames = self._frames(3)
        frames[1] = Frame(index=7, thread_cycles=(1e6,), deadline_s=0.04)
        with pytest.raises(WorkloadError):
            Application("broken", frames, PerformanceRequirement(25.0))

    def test_empty_application_rejected(self):
        with pytest.raises(WorkloadError):
            Application("empty", [], PerformanceRequirement(25.0))

    def test_workload_variability_zero_for_constant_demand(self):
        frames = [Frame(index=i, thread_cycles=(2e6,), deadline_s=0.04) for i in range(10)]
        application = Application("const", frames, PerformanceRequirement(25.0))
        assert application.workload_variability() == pytest.approx(0.0)

    def test_workload_variability_positive_for_varying_demand(self):
        application = Application("vary", self._frames(10), PerformanceRequirement(25.0))
        assert application.workload_variability() > 0.2

    def test_truncated(self):
        application = Application("demo", self._frames(10), PerformanceRequirement(25.0))
        short = application.truncated(4)
        assert short.num_frames == 4
        assert short.reference_time_s == application.reference_time_s
        with pytest.raises(WorkloadError):
            application.truncated(0)


class TestThreadSplits:
    @pytest.mark.parametrize("split_model", [EvenSplit(), ImbalancedSplit(0.3), DominantThreadSplit()])
    def test_splits_conserve_total(self, split_model):
        rng = random.Random(1)
        for total in (0.0, 1e6, 9.7e7):
            for threads in (1, 2, 4, 7):
                split = split_model.split(total, threads, rng)
                assert len(split) == threads
                assert validate_split(split, total)

    def test_even_split_is_even(self):
        split = EvenSplit().split(8e6, 4, random.Random(0))
        assert all(s == pytest.approx(2e6) for s in split)

    def test_imbalanced_split_bounded(self):
        model = ImbalancedSplit(0.25)
        split = model.split(4e6, 4, random.Random(2))
        share = [s / 1e6 for s in split]
        assert max(share) / min(share) < (1.25 / 0.75) + 1e-6

    def test_dominant_split_has_dominant_thread(self):
        model = DominantThreadSplit(dominant_share=0.4)
        split = model.split(1e7, 4, random.Random(3))
        assert split[0] == pytest.approx(4e6)
        assert split[0] >= max(split[1:])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            ImbalancedSplit(1.5)
        with pytest.raises(WorkloadError):
            DominantThreadSplit(dominant_share=1.2)
        with pytest.raises(WorkloadError):
            EvenSplit().split(-1.0, 2, random.Random(0))
        with pytest.raises(WorkloadError):
            EvenSplit().split(1.0, 0, random.Random(0))

    def test_validate_split_detects_mismatch(self):
        assert not validate_split([1.0, 1.0], 3.0)
        assert not validate_split([-1.0, 4.0], 3.0)
        assert validate_split([1.0, 2.0], 3.0)
