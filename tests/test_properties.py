"""Property-based tests (hypothesis) on the core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.odroid_xu3 import A15_VF_TABLE
from repro.platform.power import PowerModel
from repro.platform.sensors import EnergyMeter
from repro.rtm.exploration import EpsilonSchedule, ExponentialPolicy, UniformPolicy
from repro.rtm.prediction import EWMAPredictor
from repro.rtm.qtable import QTable
from repro.rtm.rewards import SlackTracker, compute_reward
from repro.rtm.state import Discretizer, StateSpace, WorkloadRangeTracker
from repro.workload.threads import DominantThreadSplit, EvenSplit, ImbalancedSplit

FREQUENCIES = A15_VF_TABLE.frequencies_hz

# Strategies kept modest so the suite stays fast.
positive_cycles = st.floats(min_value=0.0, max_value=1e10, allow_nan=False, allow_infinity=False)
slacks = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False)


class TestDiscretizerProperties:
    @given(value=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), levels=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_level_always_in_range(self, value, levels):
        discretizer = Discretizer(-1.0, 1.0, levels)
        assert 0 <= discretizer.level(value) < levels

    @given(levels=st.integers(2, 10), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_level_is_monotone_in_value(self, levels, data):
        discretizer = Discretizer(0.0, 1.0, levels)
        first = data.draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        second = data.draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        low, high = min(first, second), max(first, second)
        assert discretizer.level(low) <= discretizer.level(high)


class TestStateSpaceProperties:
    @given(workload=st.floats(0.0, 1.0, allow_nan=False), slack=slacks)
    @settings(max_examples=80, deadline=None)
    def test_state_index_always_valid(self, workload, slack):
        space = StateSpace()
        index = space.state_index(workload, slack)
        assert 0 <= index < space.num_states
        workload_level, slack_level = space.decompose(index)
        assert 0 <= workload_level < space.workload_levels
        assert 0 <= slack_level < space.slack_levels


class TestWorkloadRangeTrackerProperties:
    @given(values=st.lists(positive_cycles, min_size=1, max_size=30), probe=positive_cycles)
    @settings(max_examples=60, deadline=None)
    def test_normalised_value_always_in_unit_interval(self, values, probe):
        tracker = WorkloadRangeTracker()
        for value in values:
            tracker.observe(value)
        assert 0.0 <= tracker.normalise(probe) <= 1.0

    @given(values=st.lists(positive_cycles, min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_observed_extremes_map_inside_bounds(self, values):
        tracker = WorkloadRangeTracker()
        for value in values:
            tracker.observe(value)
        low, high = tracker.bounds
        assert low <= min(values) and max(values) <= high


class TestEWMAProperties:
    @given(values=st.lists(st.floats(1.0, 1e9, allow_nan=False), min_size=1, max_size=50),
           gamma=st.floats(0.05, 1.0, exclude_min=False))
    @settings(max_examples=60, deadline=None)
    def test_prediction_bounded_by_observed_range(self, values, gamma):
        """An EWMA is a convex combination of its inputs: it can never leave their range."""
        predictor = EWMAPredictor(gamma=gamma)
        for value in values:
            prediction = predictor.observe(value)
            assert min(values) - 1e-6 <= prediction <= max(values) + 1e-6


class TestQTableProperties:
    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 4), st.floats(-5, 5, allow_nan=False)),
            min_size=1,
            max_size=60,
        ),
        learning_rate=st.floats(0.05, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_values_stay_within_target_envelope(self, updates, learning_rate):
        """Q-values are convex combinations of 0 and the targets seen, so they stay bounded."""
        table = QTable(10, 5)
        targets = [t for _, _, t in updates]
        for state, action, target in updates:
            table.update_towards(state, action, target, learning_rate)
        lower, upper = min(0.0, min(targets)), max(0.0, max(targets))
        for state in range(10):
            for action in range(5):
                assert lower - 1e-9 <= table.get(state, action) <= upper + 1e-9

    @given(st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_best_action_always_valid(self, num_states, num_actions):
        table = QTable(num_states, num_actions)
        for state in range(num_states):
            assert 0 <= table.best_action(state) < num_actions


class TestPolicyProperties:
    @given(slack=slacks, beta=st.floats(0.0, 30.0))
    @settings(max_examples=60, deadline=None)
    def test_epd_is_a_probability_distribution(self, slack, beta):
        probabilities = ExponentialPolicy(beta=beta).probabilities(19, FREQUENCIES, slack)
        assert abs(sum(probabilities) - 1.0) < 1e-9
        assert all(p >= 0.0 for p in probabilities)

    @given(slack=slacks, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_sampling_returns_valid_action(self, slack, seed):
        rng = random.Random(seed)
        for policy in (ExponentialPolicy(), UniformPolicy()):
            action = policy.sample(19, FREQUENCIES, slack, rng)
            assert 0 <= action < 19


class TestEpsilonScheduleProperties:
    @given(rewards=st.lists(st.floats(-3, 3, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_epsilon_is_monotone_non_increasing_and_bounded(self, rewards):
        schedule = EpsilonSchedule(initial_epsilon=0.9, alpha=0.3, minimum_epsilon=0.02)
        previous = schedule.epsilon
        for reward in rewards:
            current = schedule.update(reward, confirmed=True)
            assert current <= previous + 1e-12
            assert 0.02 - 1e-12 <= current <= 0.9 + 1e-12
            previous = current


class TestRewardProperties:
    @given(slack=slacks, delta=st.floats(-0.5, 0.5, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_sign_matches_requirement_satisfaction(self, slack, delta):
        reward = compute_reward(slack, 0.0)
        if slack < 0:
            # Missing the budget is never rewarded.
            assert reward <= 0.0
        if 0.0 <= slack <= 0.2:
            # Meeting the requirement near the target slack is rewarded;
            # extreme over-performance (slack near 1) is deliberately
            # penalised, so it is excluded from the positivity claim.
            assert reward > 0.0

    @given(
        executions=st.lists(st.floats(0.0, 0.2, allow_nan=False), min_size=1, max_size=60),
        window=st.one_of(st.none(), st.integers(1, 20)),
    )
    @settings(max_examples=50, deadline=None)
    def test_average_slack_bounded_by_instantaneous_extremes(self, executions, window):
        tracker = SlackTracker(reference_time_s=0.040, window=window)
        instantaneous = []
        for execution in executions:
            tracker.update(execution)
            instantaneous.append((0.040 - execution) / 0.040)
        assert min(instantaneous) - 1e-9 <= tracker.average_slack <= max(instantaneous) + 1e-9


class TestThreadSplitProperties:
    @given(
        total=st.floats(0.0, 1e9, allow_nan=False),
        threads=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_splits_conserve_work_and_stay_non_negative(self, total, threads, seed):
        rng = random.Random(seed)
        for model in (EvenSplit(), ImbalancedSplit(0.3), DominantThreadSplit()):
            split = model.split(total, threads, rng)
            assert len(split) == threads
            assert all(share >= 0.0 for share in split)
            assert abs(sum(split) - total) <= 1e-6 * max(1.0, total)


class TestEnergyBookkeepingProperties:
    @given(
        intervals=st.lists(
            st.tuples(st.floats(0.0, 10.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_meter_total_is_sum_of_interval_energies(self, intervals):
        meter = EnergyMeter()
        expected = 0.0
        for power, duration in intervals:
            meter.add_interval(power, duration)
            expected += power * duration
        assert meter.energy_j >= 0.0
        assert abs(meter.energy_j - expected) <= 1e-9 + 1e-9 * expected

    @given(utilisation=st.floats(0.0, 1.0, allow_nan=False), index=st.integers(0, 18),
           temperature=st.floats(25.0, 95.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_power_model_always_positive_and_monotone_in_utilisation(self, utilisation, index, temperature):
        model = PowerModel()
        point = A15_VF_TABLE[index]
        breakdown = model.core_power(point, utilisation, temperature)
        assert breakdown.dynamic_w > 0.0
        assert breakdown.static_w > 0.0
        assert model.dynamic_power_w(point, 1.0) >= model.dynamic_power_w(point, utilisation) - 1e-12
