"""Equivalence and selection tests for the vectorised fast path.

The contract under test: for every governor that exposes a static schedule,
the NumPy trace engine must reproduce the scalar engine frame by frame —
energy and timing to 1e-9 relative tolerance, identical operating-point
choices, identical deadline-miss sets — and the engine must fall back to
the scalar loop whenever the governor or platform is ineligible.
"""

from __future__ import annotations

import pytest

from repro.governors.ondemand import OndemandGovernor
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.userspace import UserspaceGovernor
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.sim import fastpath
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workload.fft import fft_application
from repro.workload.video import mpeg4_application

numpy = pytest.importorskip("numpy")

#: Governor factories whose schedules are observation-independent.
ELIGIBLE_GOVERNORS = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "userspace": lambda: UserspaceGovernor(index=9),
    "oracle": OracleGovernor,
}


def _run_both(factory, application, **config_kwargs):
    """Run ``application`` under ``factory()`` on both engines."""
    scalar_engine = SimulationEngine(
        build_a15_cluster(),
        SimulationConfig(prefer_fast_path=False, **config_kwargs),
    )
    scalar = scalar_engine.run(application, factory())
    assert not scalar_engine.last_used_fast_path

    fast_engine = SimulationEngine(
        build_a15_cluster(),
        SimulationConfig(prefer_fast_path=True, **config_kwargs),
    )
    fast = fast_engine.run(application, factory())
    assert fast_engine.last_used_fast_path
    return scalar, fast, fast_engine


def _assert_frame_by_frame_equivalent(scalar, fast):
    assert fast.num_frames == scalar.num_frames
    assert fast.governor_name == scalar.governor_name
    assert fast.application_name == scalar.application_name
    for fast_record, scalar_record in zip(fast.records, scalar.records):
        assert fast_record.index == scalar_record.index
        assert fast_record.operating_index == scalar_record.operating_index
        assert fast_record.frequency_mhz == scalar_record.frequency_mhz
        assert fast_record.cycles_per_core == scalar_record.cycles_per_core
        assert fast_record.energy_j == pytest.approx(scalar_record.energy_j, rel=1e-9)
        assert fast_record.busy_time_s == pytest.approx(
            scalar_record.busy_time_s, rel=1e-9
        )
        assert fast_record.frame_time_s == pytest.approx(
            scalar_record.frame_time_s, rel=1e-9
        )
        assert fast_record.interval_s == pytest.approx(
            scalar_record.interval_s, rel=1e-9
        )
        assert fast_record.overhead_time_s == pytest.approx(
            scalar_record.overhead_time_s, rel=1e-9, abs=1e-15
        )
        assert fast_record.average_power_w == pytest.approx(
            scalar_record.average_power_w, rel=1e-9
        )
        assert fast_record.measured_power_w == pytest.approx(
            scalar_record.measured_power_w, rel=1e-9, abs=1e-12
        )
    # Deadline-miss sets must be *identical*, not merely close.
    scalar_misses = [r.index for r in scalar.records if not r.met_deadline]
    fast_misses = [r.index for r in fast.records if not r.met_deadline]
    assert fast_misses == scalar_misses
    assert fast.total_energy_j == pytest.approx(scalar.total_energy_j, rel=1e-9)
    assert fast.total_time_s == pytest.approx(scalar.total_time_s, rel=1e-9)


class TestFastPathEquivalence:
    @pytest.mark.parametrize("name", sorted(ELIGIBLE_GOVERNORS))
    def test_matches_scalar_engine_frame_by_frame(self, name):
        application = mpeg4_application(num_frames=250, seed=5)
        scalar, fast, _ = _run_both(ELIGIBLE_GOVERNORS[name], application)
        _assert_frame_by_frame_equivalent(scalar, fast)

    @pytest.mark.parametrize("name", sorted(ELIGIBLE_GOVERNORS))
    def test_matches_on_fft_without_deadline_padding(self, name):
        application = fft_application(num_frames=150, seed=2)
        scalar, fast, _ = _run_both(
            ELIGIBLE_GOVERNORS[name], application, idle_until_deadline=False
        )
        _assert_frame_by_frame_equivalent(scalar, fast)

    def test_matches_without_overhead_charging(self):
        application = mpeg4_application(num_frames=120, seed=9)
        scalar, fast, _ = _run_both(
            OracleGovernor, application, charge_governor_overhead=False
        )
        _assert_frame_by_frame_equivalent(scalar, fast)
        assert fast.total_overhead_s == 0.0

    def test_matches_with_sensor_noise(self):
        """The fast path drives the real sensor, so seeded noise matches too."""
        application = mpeg4_application(num_frames=100, seed=3)

        def run(prefer):
            engine = SimulationEngine(
                build_a15_cluster(sensor_noise_w=0.05, seed=42),
                SimulationConfig(prefer_fast_path=prefer),
            )
            return engine.run(application, OracleGovernor()), engine

        scalar, _ = run(False)
        fast, fast_engine = run(True)
        assert fast_engine.last_used_fast_path
        _assert_frame_by_frame_equivalent(scalar, fast)

    def test_cluster_aggregate_state_synchronised(self):
        application = mpeg4_application(num_frames=200, seed=5)
        scalar, fast, fast_engine = _run_both(OracleGovernor, application)
        cluster = fast_engine.cluster
        assert cluster.total_energy_j == pytest.approx(fast.total_energy_j, rel=1e-6)
        assert cluster.time_s == pytest.approx(fast.total_time_s, rel=1e-9)
        assert cluster.current_index == fast.records[-1].operating_index
        total_cycles = sum(r.total_cycles for r in fast.records)
        pmu_cycles = sum(core.pmu.busy_cycles for core in cluster.cores)
        assert pmu_cycles == pytest.approx(total_cycles, rel=1e-9)

    def test_dvfs_transition_history_matches_scalar(self):
        application = mpeg4_application(num_frames=200, seed=5)

        def run(prefer):
            engine = SimulationEngine(
                build_a15_cluster(), SimulationConfig(prefer_fast_path=prefer)
            )
            engine.run(application, OracleGovernor())
            return engine.cluster.dvfs

        scalar_dvfs = run(False)
        fast_dvfs = run(True)
        assert fast_dvfs.transition_count == scalar_dvfs.transition_count
        assert fast_dvfs.transition_count > 0  # the Oracle does transition
        assert fast_dvfs.total_transition_energy_j == pytest.approx(
            scalar_dvfs.total_transition_energy_j
        )
        assert fast_dvfs.total_transition_time_s == pytest.approx(
            scalar_dvfs.total_transition_time_s
        )
        for fast_t, scalar_t in zip(fast_dvfs.transitions, scalar_dvfs.transitions):
            assert fast_t.from_index == scalar_t.from_index
            assert fast_t.to_index == scalar_t.to_index
            assert fast_t.timestamp_s == pytest.approx(
                scalar_t.timestamp_s, rel=1e-9, abs=1e-12
            )


class TestFastPathSelection:
    def test_closed_loop_governors_stay_on_scalar_engine(self):
        application = mpeg4_application(num_frames=30, seed=1)
        for factory in (OndemandGovernor, MultiCoreRLGovernor):
            engine = SimulationEngine(build_a15_cluster())
            engine.run(application, factory())
            assert not engine.last_used_fast_path

    def test_thermal_enabled_cluster_is_ineligible(self):
        cluster = build_a15_cluster(enable_thermal=True)
        assert not fastpath.fast_path_eligible(cluster)
        engine = SimulationEngine(cluster)
        engine.run(mpeg4_application(num_frames=30, seed=1), OracleGovernor())
        assert not engine.last_used_fast_path

    def test_prefer_fast_path_false_forces_scalar(self):
        engine = SimulationEngine(
            build_a15_cluster(), SimulationConfig(prefer_fast_path=False)
        )
        engine.run(mpeg4_application(num_frames=30, seed=1), OracleGovernor())
        assert not engine.last_used_fast_path

    def test_schedule_length_mismatch_rejected(self):
        from repro.errors import SimulationError

        cluster = build_a15_cluster()
        application = mpeg4_application(num_frames=10, seed=1)
        governor = PerformanceGovernor()
        governor.setup(
            SimulationEngine(cluster).platform_info(), application.requirement
        )
        with pytest.raises(SimulationError):
            fastpath.simulate_schedule(
                cluster, application, governor, SimulationConfig(), [0] * 5
            )
        with pytest.raises(SimulationError):
            fastpath.simulate_schedule(
                cluster, application, governor, SimulationConfig(), [99] * 10
            )


class TestStaticScheduleProbe:
    def _setup(self, governor, application):
        engine = SimulationEngine(build_a15_cluster())
        governor.setup(engine.platform_info(), application.requirement)
        return governor

    def test_closed_loop_governor_returns_none(self):
        application = mpeg4_application(num_frames=20, seed=1)
        governor = self._setup(OndemandGovernor(), application)
        assert governor.static_schedule(application) is None

    def test_static_governors_repeat_their_index(self):
        application = mpeg4_application(num_frames=20, seed=1)
        performance = self._setup(PerformanceGovernor(), application)
        powersave = self._setup(PowersaveGovernor(), application)
        userspace = self._setup(UserspaceGovernor(index=4), application)
        table_top = performance.platform.num_actions - 1
        assert performance.static_schedule(application) == [table_top] * 20
        assert powersave.static_schedule(application) == [0] * 20
        assert userspace.static_schedule(application) == [4] * 20

    def test_vectorised_table_lookup_matches_scalar(self):
        from repro.platform.odroid_xu3 import A15_VF_TABLE

        application = mpeg4_application(num_frames=200, seed=8)
        cycles = [max(frame.cycles_per_core(4)) for frame in application]
        deadlines = [frame.deadline_s for frame in application]
        vectorised = A15_VF_TABLE.lowest_indices_meeting(cycles, deadlines)
        scalar = [
            A15_VF_TABLE.lowest_index_meeting(c, d) for c, d in zip(cycles, deadlines)
        ]
        assert vectorised == scalar
        with pytest.raises(ValueError):
            A15_VF_TABLE.lowest_indices_meeting([1e6], [0.0])

    def test_oracle_schedule_matches_per_frame_decide(self):
        from repro.rtm.governor import FrameHint

        application = mpeg4_application(num_frames=100, seed=8)
        governor = self._setup(OracleGovernor(), application)
        schedule = governor.static_schedule(application)
        num_cores = governor.platform.num_cores
        for frame, index in zip(application, schedule):
            hint = FrameHint(
                cycles_per_core=frame.cycles_per_core(num_cores),
                deadline_s=frame.deadline_s,
            )
            assert index == governor.decide(None, hint)


class TestPowerCache:
    def test_cached_and_uncached_energies_identical(self):
        application = mpeg4_application(num_frames=60, seed=4)

        def run(power_cache_size):
            engine = SimulationEngine(
                build_a15_cluster(power_cache_size=power_cache_size),
                SimulationConfig(prefer_fast_path=False),
            )
            return engine.run(application, OndemandGovernor())

        cached = run(1024)
        uncached = run(0)
        assert [r.energy_j for r in cached.records] == [
            r.energy_j for r in uncached.records
        ]

    def test_cache_is_exact_with_thermal_enabled(self):
        """Moving temperature never changes numbers (exact keys bypass the cache)."""
        application = mpeg4_application(num_frames=40, seed=4)

        def run(power_cache_size):
            engine = SimulationEngine(
                build_a15_cluster(enable_thermal=True, power_cache_size=power_cache_size),
                SimulationConfig(prefer_fast_path=False),
            )
            return engine.run(application, OndemandGovernor())

        assert [r.energy_j for r in run(1024).records] == [
            r.energy_j for r in run(0).records
        ]

    def test_temperature_bucketing_approximates(self):
        application = mpeg4_application(num_frames=40, seed=4)

        def run(bucket):
            cluster = build_a15_cluster(enable_thermal=True)
            cluster.power_cache_bucket_c = bucket
            engine = SimulationEngine(cluster, SimulationConfig(prefer_fast_path=False))
            return engine.run(application, OndemandGovernor())

        exact = run(0.0)
        bucketed = run(0.5)
        assert bucketed.total_energy_j == pytest.approx(
            exact.total_energy_j, rel=1e-2
        )

    def test_lru_eviction_bounds_cache(self):
        cluster = build_a15_cluster(power_cache_size=4)
        for index in range(10):
            cluster.core_power_w(index, True, 50.0)
        assert len(cluster._power_cache) <= 4
        # Evicted entries recompute to the same value.
        direct = cluster.power_model.core_power_w(cluster.vf_table[0], 1.0, 50.0)
        assert cluster.core_power_w(0, True, 50.0) == direct

    def test_invalidate_power_cache(self):
        cluster = build_a15_cluster()
        cluster.core_power_w(3, True, 50.0)
        assert len(cluster._power_cache) > 0
        cluster.invalidate_power_cache()
        assert len(cluster._power_cache) == 0


class TestHistoryGating:
    def test_cluster_history_off_by_default(self):
        engine = SimulationEngine(build_a15_cluster())
        engine.run(mpeg4_application(num_frames=50, seed=1), OndemandGovernor())
        cluster = engine.cluster
        assert cluster.power_sensor.history_len == 0
        assert cluster.energy_meter.intervals == ()

    def test_record_history_opt_in(self):
        engine = SimulationEngine(build_a15_cluster(record_history=True))
        engine.run(mpeg4_application(num_frames=50, seed=1), OndemandGovernor())
        cluster = engine.cluster
        assert cluster.power_sensor.history_len == 50
        assert len(cluster.energy_meter.intervals) == 50

    def test_fast_path_records_history_when_opted_in(self):
        engine = SimulationEngine(build_a15_cluster(record_history=True))
        engine.run(mpeg4_application(num_frames=50, seed=1), OracleGovernor())
        assert engine.last_used_fast_path
        assert engine.cluster.power_sensor.history_len == 50
        # The meter history is replayed per frame, matching the scalar engine.
        assert len(engine.cluster.energy_meter.intervals) == 50

    def test_fast_path_meter_history_matches_scalar(self):
        application = mpeg4_application(num_frames=40, seed=6)

        def run(prefer):
            engine = SimulationEngine(
                build_a15_cluster(record_history=True),
                SimulationConfig(prefer_fast_path=prefer),
            )
            engine.run(application, OracleGovernor())
            return engine.cluster.energy_meter.intervals

        scalar_intervals = run(False)
        fast_intervals = run(True)
        assert len(fast_intervals) == len(scalar_intervals)
        for fast_entry, scalar_entry in zip(fast_intervals, scalar_intervals):
            assert fast_entry.timestamp_s == pytest.approx(
                scalar_entry.timestamp_s, rel=1e-9, abs=1e-15
            )
            assert fast_entry.power_w == pytest.approx(scalar_entry.power_w, rel=1e-9)


class TestMeasureTrace:
    def test_matches_sequential_measure(self):
        from repro.platform.sensors import PowerSensor

        powers = [1.0, 2.5, 0.013, 4.2, 3.3]
        times = [0.04 * (i + 1) for i in range(5)]
        loop_sensor = PowerSensor()
        expected = [loop_sensor.measure(p, t).power_w for p, t in zip(powers, times)]
        vector_sensor = PowerSensor()
        assert vector_sensor.measure_trace(powers, times) == expected

    def test_holdover_falls_back_to_loop(self):
        from repro.platform.sensors import PowerSensor

        # Gaps below the sample period force the scalar holdover logic.
        powers = [1.0, 2.0, 3.0]
        times = [0.0, 0.004, 0.008]
        loop_sensor = PowerSensor(sample_period_s=0.01)
        expected = [loop_sensor.measure(p, t).power_w for p, t in zip(powers, times)]
        vector_sensor = PowerSensor(sample_period_s=0.01)
        assert vector_sensor.measure_trace(powers, times) == expected
        # The held-over readings all repeat the first conversion.
        assert expected[1] == expected[0] and expected[2] == expected[0]
