"""Unit tests for the state space, workload-range tracker and Q-table."""

import pytest

from repro.errors import ConfigurationError, StateSpaceError
from repro.rtm.qtable import QTable
from repro.rtm.state import (
    Discretizer,
    StateSpace,
    WorkloadNormalisation,
    WorkloadRangeTracker,
)


class TestDiscretizer:
    def test_levels_partition_the_range(self):
        discretizer = Discretizer(0.0, 1.0, 5)
        assert discretizer.level(0.0) == 0
        assert discretizer.level(0.19) == 0
        assert discretizer.level(0.21) == 1
        assert discretizer.level(0.99) == 4
        assert discretizer.level(1.0) == 4  # upper edge clamps into the top level

    def test_out_of_range_values_clamp(self):
        discretizer = Discretizer(-0.5, 0.5, 5)
        assert discretizer.level(-2.0) == 0
        assert discretizer.level(2.0) == 4

    def test_midpoint_round_trips(self):
        discretizer = Discretizer(0.0, 10.0, 4)
        for level in range(4):
            assert discretizer.level(discretizer.midpoint(level)) == level
        with pytest.raises(StateSpaceError):
            discretizer.midpoint(9)

    def test_nan_rejected(self):
        with pytest.raises(StateSpaceError):
            Discretizer(0.0, 1.0, 3).level(float("nan"))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Discretizer(0.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            Discretizer(1.0, 1.0, 3)


class TestWorkloadRangeTracker:
    def test_empty_tracker_maps_to_middle(self):
        tracker = WorkloadRangeTracker()
        assert tracker.normalise(123.0) == pytest.approx(0.5)
        assert not tracker.has_observations

    def test_normalises_relative_to_observed_range(self):
        tracker = WorkloadRangeTracker(margin=0.0)
        tracker.observe(1e7)
        tracker.observe(2e7)
        assert tracker.normalise(1e7) == pytest.approx(0.0)
        assert tracker.normalise(2e7) == pytest.approx(1.0)
        assert tracker.normalise(1.5e7) == pytest.approx(0.5)

    def test_values_outside_range_clamp(self):
        tracker = WorkloadRangeTracker(margin=0.0)
        tracker.observe(1e7)
        tracker.observe(2e7)
        assert tracker.normalise(5e6) == 0.0
        assert tracker.normalise(9e7) == 1.0

    def test_margin_expands_bounds(self):
        tracker = WorkloadRangeTracker(margin=0.1)
        tracker.observe(100.0)
        tracker.observe(200.0)
        low, high = tracker.bounds
        assert low < 100.0
        assert high > 200.0

    def test_negative_observation_rejected(self):
        with pytest.raises(StateSpaceError):
            WorkloadRangeTracker().observe(-1.0)

    def test_reset(self):
        tracker = WorkloadRangeTracker()
        tracker.observe(1.0)
        tracker.reset()
        assert not tracker.has_observations


class TestStateSpace:
    def test_size_matches_paper_defaults(self):
        space = StateSpace()
        assert space.workload_levels == 5
        assert space.slack_levels == 5
        assert space.num_states == 25

    def test_state_index_bijective_over_levels(self):
        space = StateSpace(workload_levels=4, slack_levels=3)
        seen = set()
        for workload_level in range(4):
            for slack_level in range(3):
                workload = space.workload_discretizer.midpoint(workload_level)
                slack = space.slack_discretizer.midpoint(slack_level)
                index = space.state_index(workload, slack)
                assert space.decompose(index) == (workload_level, slack_level)
                seen.add(index)
        assert seen == set(range(space.num_states))

    def test_decompose_rejects_out_of_range(self):
        with pytest.raises(StateSpaceError):
            StateSpace().decompose(999)

    def test_capacity_normalisation(self):
        space = StateSpace(normalisation=WorkloadNormalisation.CAPACITY)
        assert space.normalise_workload(5e7, capacity_cycles=1e8) == pytest.approx(0.5)
        assert space.normalise_workload(2e8, capacity_cycles=1e8) == 1.0
        with pytest.raises(StateSpaceError):
            space.normalise_workload(1e7, capacity_cycles=0.0)

    def test_total_share_normalisation_is_equation_7(self):
        space = StateSpace(normalisation=WorkloadNormalisation.TOTAL_SHARE)
        predictions = [1e7, 2e7, 3e7, 4e7]
        share = space.normalise_workload(2e7, capacity_cycles=1e9, all_core_predictions=predictions)
        assert share == pytest.approx(0.2)
        # Shares over all cores sum to 1.
        total = sum(
            space.normalise_workload(p, capacity_cycles=1e9, all_core_predictions=predictions)
            for p in predictions
        )
        assert total == pytest.approx(1.0)

    def test_total_share_with_zero_total(self):
        space = StateSpace(normalisation=WorkloadNormalisation.TOTAL_SHARE)
        assert space.normalise_workload(0.0, 1e9, [0.0, 0.0]) == 0.0

    def test_negative_workload_rejected(self):
        with pytest.raises(StateSpaceError):
            StateSpace().normalise_workload(-1.0, 1e8)


class TestQTable:
    def test_initial_values(self):
        table = QTable(num_states=4, num_actions=3, initial_value=0.5)
        assert table.size == 12
        assert table.get(0, 0) == 0.5
        assert table.max_value(2) == 0.5

    def test_set_get_and_bounds(self):
        table = QTable(3, 2)
        table.set(1, 1, 2.5)
        assert table.get(1, 1) == 2.5
        with pytest.raises(StateSpaceError):
            table.get(5, 0)
        with pytest.raises(StateSpaceError):
            table.set(0, 9, 1.0)

    def test_best_action_and_tie_breaking(self):
        table = QTable(1, 4)
        # All zero: tie-break selects the fastest (highest-index) action.
        assert table.best_action(0) == 3
        assert table.best_action(0, tie_break="lowest") == 0
        table.set(0, 1, 1.0)
        assert table.best_action(0) == 1

    def test_update_towards_matches_equation_3(self):
        """Q <- (1 - alpha) * Q + alpha * (R + gamma * max Q(next))."""
        table = QTable(2, 2)
        table.set(0, 0, 1.0)
        table.set(1, 1, 2.0)
        alpha, gamma, reward = 0.5, 0.4, 0.7
        target = reward + gamma * table.max_value(1)
        new_value = table.update_towards(0, 0, target, alpha)
        assert new_value == pytest.approx((1 - alpha) * 1.0 + alpha * target)
        assert table.get(0, 0) == pytest.approx(new_value)

    def test_update_towards_invalid_learning_rate(self):
        table = QTable(1, 1)
        with pytest.raises(ConfigurationError):
            table.update_towards(0, 0, 1.0, 0.0)

    def test_visit_counters(self):
        table = QTable(2, 2)
        table.record_visit(0, 1)
        table.record_visit(0, 1)
        table.record_visit(1, 0)
        assert table.visit_count(0, 1) == 2
        assert table.visited_state_count() == 2
        assert table.visited_pair_count() == 2

    def test_greedy_policy_vector(self):
        table = QTable(3, 2)
        table.set(1, 0, 5.0)
        policy = table.greedy_policy()
        assert len(policy) == 3
        assert policy[1] == 0

    def test_json_round_trip(self, tmp_path):
        table = QTable(3, 4)
        table.set(2, 1, 3.25)
        table.record_visit(2, 1)
        path = tmp_path / "qtable.json"
        table.to_json(path)
        loaded = QTable.from_json(path)
        assert loaded.get(2, 1) == pytest.approx(3.25)
        assert loaded.visit_count(2, 1) == 1
        assert loaded.num_states == 3 and loaded.num_actions == 4

    def test_copy_is_independent(self):
        table = QTable(2, 2)
        clone = table.copy()
        clone.set(0, 0, 9.0)
        assert table.get(0, 0) == 0.0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            QTable(0, 5)
