"""Bit-identity and planner tests for the batched multi-scenario engine.

The contract under test: stepping S scenarios through
:mod:`repro.sim.batchpath` in one batch reproduces S individual runs of the
per-scenario table engines (:mod:`repro.sim.tablepath` isothermal,
:mod:`repro.sim.thermalpath` thermal) *exactly* — operating-point
trajectories, every per-frame float, deadline-miss sets, exploration
counts, reward histories, final Q-tables and ε, cluster aggregate state
(energy meter, PMU, DVFS transitions, clock, thermal state) — for every
governor family, with and without the thermal model, across RL seeds.  On
top of that engine, the campaign batch planner must group only compatible
scenarios, stamp ``engine_used="batchpath"`` independent of group size, and
keep sharded + merged campaign results identical to unsharded runs.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.governors.conservative import ConservativeGovernor
from repro.governors.multicore_dvfs import MultiCoreDVFSGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.shen_rl import ShenRLGovernor
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.rtm.qlearning import QLearningParameters
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig
from repro.sim import batchpath
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workload.fft import fft_application
from repro.workload.video import mpeg4_application

numpy = pytest.importorskip("numpy")

RL_SEEDS = (0, 1, 2)

#: One factory per vectorisation family plus the scalar-decide fallbacks.
GOVERNOR_FACTORIES = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "oracle": OracleGovernor,
    "rl-seed0": lambda: RLGovernor(RLGovernorConfig(seed=0)),
    "rl-seed1": lambda: RLGovernor(RLGovernorConfig(seed=1)),
    "rl-seed2": lambda: RLGovernor(RLGovernorConfig(seed=2)),
    "rl-multicore": MultiCoreRLGovernor,
    "shen-rl-upd": ShenRLGovernor,
    "multicore-dvfs": MultiCoreDVFSGovernor,
}

COLUMN_FIELDS = (
    "operating_index",
    "frequency_mhz",
    "busy_time_s",
    "overhead_time_s",
    "frame_time_s",
    "interval_s",
    "deadline_s",
    "energy_j",
    "average_power_w",
    "measured_power_w",
    "temperature_c",
    "explored",
)


def _miss_set(result):
    """Deadline-missed frame indices (materialises the record list)."""
    return [record.index for record in result.records if not record.met_deadline]


def _reference_run(factory, application, config, thermal):
    """One per-scenario table-engine run (the bit-identity baseline)."""
    cluster = build_a15_cluster(enable_thermal=thermal)
    engine = SimulationEngine(
        cluster, config, engine="thermalpath" if thermal else "tablepath"
    )
    governor = factory()
    result = engine.run(application, governor)
    return result, governor, cluster


def _assert_columns_identical(reference, batched, label):
    assert batched.num_frames == reference.num_frames
    for field in COLUMN_FIELDS:
        expected = list(getattr(reference.columns, field))
        actual = list(getattr(batched.columns, field))
        # Exact equality: the batched engine must produce the same IEEE
        # operations as the per-scenario loop, not merely close floats.
        assert actual == expected, f"{label}: column {field!r} diverged"


def _assert_cluster_state_identical(reference_cluster, cluster, label):
    assert (
        cluster.energy_meter.energy_j == reference_cluster.energy_meter.energy_j
    ), label
    assert (
        cluster.energy_meter.elapsed_s == reference_cluster.energy_meter.elapsed_s
    ), label
    assert cluster.time_s == reference_cluster.time_s, label
    assert cluster.current_index == reference_cluster.current_index, label
    assert (
        cluster.dvfs.transition_count == reference_cluster.dvfs.transition_count
    ), label
    assert cluster.dvfs.transitions == reference_cluster.dvfs.transitions, label
    for core, reference_core in zip(cluster.cores, reference_cluster.cores):
        assert core.pmu.busy_cycles == reference_core.pmu.busy_cycles, label
        assert core.pmu.idle_cycles == reference_core.pmu.idle_cycles, label
        assert core.pmu.elapsed_time_s == reference_core.pmu.elapsed_time_s, label
    if cluster.thermal_model.enabled:
        assert (
            cluster.thermal_model.temperature_c
            == reference_cluster.thermal_model.temperature_c
        ), label
        assert (
            cluster.thermal_model.throttle_events
            == reference_cluster.thermal_model.throttle_events
        ), label


def _assert_governor_state_identical(reference_governor, governor, label):
    if isinstance(reference_governor, RLGovernor):
        reference_agent = reference_governor.agent
        agent = governor.agent
        assert agent.qtable._values == reference_agent.qtable._values, label
        assert (
            agent.qtable._visit_counts == reference_agent.qtable._visit_counts
        ), label
        assert agent.epsilon == reference_agent.epsilon, label
        assert agent.exploration_draws == reference_agent.exploration_draws, label
        assert (
            agent.exploration_phase_length
            == reference_agent.exploration_phase_length
        ), label
        assert governor.reward_history == reference_governor.reward_history, label
        assert governor.converged_epoch == reference_governor.converged_epoch, label


class TestBitIdentity:
    """Batched runs reproduce the per-scenario table engines exactly."""

    @pytest.mark.parametrize("thermal", [False, True], ids=["isothermal", "thermal"])
    def test_mixed_family_batch_matches_per_scenario_engines(self, thermal):
        application = mpeg4_application(num_frames=300, seed=5)
        config = SimulationConfig()
        references = {
            label: _reference_run(factory, application, config, thermal)
            for label, factory in GOVERNOR_FACTORIES.items()
        }
        members = [
            (build_a15_cluster(enable_thermal=thermal), factory())
            for factory in GOVERNOR_FACTORIES.values()
        ]
        results = batchpath.run_batch(members, application, config)
        for label, result, (cluster, governor) in zip(
            GOVERNOR_FACTORIES, results, members
        ):
            reference, reference_governor, reference_cluster = references[label]
            _assert_columns_identical(reference, result, label)
            assert result.exploration_count == reference.exploration_count, label
            assert result.converged_epoch == reference.converged_epoch, label
            assert _miss_set(result) == _miss_set(reference), label
            _assert_governor_state_identical(reference_governor, governor, label)
            _assert_cluster_state_identical(reference_cluster, cluster, label)

    @pytest.mark.parametrize("thermal", [False, True], ids=["isothermal", "thermal"])
    def test_rl_seed_sweep_in_one_batch(self, thermal):
        """Per-scenario RNG streams stay independent inside one batch."""
        application = fft_application(num_frames=150, seed=2)
        config = SimulationConfig()
        factories = [
            (seed, (lambda s=seed: RLGovernor(RLGovernorConfig(seed=s))))
            for seed in RL_SEEDS
        ]
        members = [
            (build_a15_cluster(enable_thermal=thermal), factory())
            for _, factory in factories
        ]
        results = batchpath.run_batch(members, application, config)
        trajectories = set()
        for (seed, factory), result, (cluster, governor) in zip(
            factories, results, members
        ):
            label = f"rl-seed{seed}"
            reference, reference_governor, reference_cluster = _reference_run(
                factory, application, config, thermal
            )
            _assert_columns_identical(reference, result, label)
            _assert_governor_state_identical(reference_governor, governor, label)
            _assert_cluster_state_identical(reference_cluster, cluster, label)
            trajectories.add(tuple(result.columns.operating_index))
        # The seeds must actually explore differently, or the independence
        # claim is vacuous.
        assert len(trajectories) > 1

    @pytest.mark.parametrize("thermal", [False, True], ids=["isothermal", "thermal"])
    def test_scalar_cutoff_routing_identical_to_forced_batching(self, thermal):
        """The cost model's scalar routing never changes any result.

        With :data:`batchpath.DEFAULT_SCALAR_CUTOFFS` a 3-seed RL family
        sits below the cutoff and runs member-by-member on the per-scenario
        engine, while the wider families stay vectorised — and every
        result, governor and cluster must match a fully batched run.
        """
        application = mpeg4_application(num_frames=120, seed=3)
        config = SimulationConfig()
        factories = [
            PerformanceGovernor,
            OndemandGovernor,
            ConservativeGovernor,
        ] + [(lambda s=seed: RLGovernor(RLGovernorConfig(seed=s))) for seed in RL_SEEDS]
        assert len(RL_SEEDS) < batchpath.DEFAULT_SCALAR_CUTOFFS["rl"]

        def build_members():
            return [
                (build_a15_cluster(enable_thermal=thermal), factory())
                for factory in factories
            ]

        forced_members = build_members()
        forced = batchpath.run_batch(forced_members, application, config)
        routed_members = build_members()
        routed = batchpath.run_batch(
            routed_members,
            application,
            config,
            scalar_cutoffs=batchpath.DEFAULT_SCALAR_CUTOFFS,
        )
        for position, (reference, result) in enumerate(zip(forced, routed)):
            label = f"member{position}"
            _assert_columns_identical(reference, result, label)
            assert _miss_set(result) == _miss_set(reference), label
            _assert_governor_state_identical(
                forced_members[position][1], routed_members[position][1], label
            )
            _assert_cluster_state_identical(
                forced_members[position][0], routed_members[position][0], label
            )

    def test_heterogeneous_rl_hyperparameters_in_one_subgroup(self):
        """Members differing only in learning rate / ε batch together."""
        application = mpeg4_application(num_frames=200, seed=7)
        config = SimulationConfig()
        factories = [
            lambda: RLGovernor(
                RLGovernorConfig(seed=0, learning=QLearningParameters(learning_rate=0.1))
            ),
            lambda: RLGovernor(
                RLGovernorConfig(seed=0, learning=QLearningParameters(learning_rate=0.9))
            ),
            lambda: RLGovernor(
                RLGovernorConfig(seed=1, learning=QLearningParameters(initial_epsilon=0.3))
            ),
        ]
        members = [(build_a15_cluster(), factory()) for factory in factories]
        results = batchpath.run_batch(members, application, config)
        for index, (factory, result, (cluster, governor)) in enumerate(
            zip(factories, results, members)
        ):
            reference, reference_governor, reference_cluster = _reference_run(
                factory, application, config, thermal=False
            )
            _assert_columns_identical(reference, result, f"member{index}")
            _assert_governor_state_identical(
                reference_governor, governor, f"member{index}"
            )
            _assert_cluster_state_identical(
                reference_cluster, cluster, f"member{index}"
            )

    def test_sensor_noise_members_fall_back_to_scalar_sensor_path(self):
        """A noisy power sensor forces the per-member sensor loop and still
        matches the per-scenario engine draw for draw."""
        application = mpeg4_application(num_frames=80, seed=3)
        config = SimulationConfig()

        def noisy_cluster():
            return build_a15_cluster(sensor_noise_w=0.05, seed=11)

        cluster = noisy_cluster()
        engine = SimulationEngine(cluster, config, engine="tablepath")
        reference = engine.run(application, OndemandGovernor())

        members = [(noisy_cluster(), OndemandGovernor())]
        (result,) = batchpath.run_batch(members, application, config)
        _assert_columns_identical(reference, result, "noisy")

    def test_batch_of_one_matches_batch_of_many(self):
        """Results are independent of batch composition."""
        application = mpeg4_application(num_frames=150, seed=5)
        config = SimulationConfig()
        factory = lambda: RLGovernor(RLGovernorConfig(seed=1))
        (solo,) = batchpath.run_batch(
            [(build_a15_cluster(), factory())], application, config
        )
        grouped = batchpath.run_batch(
            [
                (build_a15_cluster(), OndemandGovernor()),
                (build_a15_cluster(), factory()),
                (build_a15_cluster(), RLGovernor(RLGovernorConfig(seed=2))),
            ],
            application,
            config,
        )
        _assert_columns_identical(solo, grouped[1], "composition")

    def test_no_overhead_and_no_padding_configs(self):
        application = mpeg4_application(num_frames=100, seed=5)
        for config in (
            SimulationConfig(charge_governor_overhead=False),
            SimulationConfig(idle_until_deadline=False),
        ):
            for factory in (OndemandGovernor, lambda: RLGovernor(RLGovernorConfig())):
                reference, _, _ = _reference_run(
                    factory, application, config, thermal=False
                )
                (result,) = batchpath.run_batch(
                    [(build_a15_cluster(), factory())], application, config
                )
                _assert_columns_identical(reference, result, "config-variant")


class TestValidation:
    def test_mixed_thermal_modes_rejected(self):
        application = mpeg4_application(num_frames=10, seed=1)
        members = [
            (build_a15_cluster(), OndemandGovernor()),
            (build_a15_cluster(enable_thermal=True), OndemandGovernor()),
        ]
        with pytest.raises(SimulationError, match="thermal mode"):
            batchpath.run_batch(members, application, SimulationConfig())

    def test_mismatched_cluster_physics_rejected(self):
        application = mpeg4_application(num_frames=10, seed=1)
        members = [
            (build_a15_cluster(num_cores=4), OndemandGovernor()),
            (build_a15_cluster(num_cores=2), OndemandGovernor()),
        ]
        with pytest.raises(SimulationError, match="cluster physics"):
            batchpath.run_batch(members, application, SimulationConfig())

    def test_empty_batch_is_empty(self):
        application = mpeg4_application(num_frames=10, seed=1)
        assert batchpath.run_batch([], application, SimulationConfig()) == []

    def test_stale_tables_are_rebuilt(self):
        application = mpeg4_application(num_frames=20, seed=1)
        other = mpeg4_application(num_frames=10, seed=1)
        stale = batchpath.precompute_tables(
            build_a15_cluster(), other, SimulationConfig()
        )
        (result,) = batchpath.run_batch(
            [(build_a15_cluster(), OndemandGovernor())],
            application,
            SimulationConfig(),
            tables=stale,
        )
        assert result.num_frames == 20


class TestBackendRegistration:
    def test_batchpath_backend_runs_single_requests(self):
        engine = SimulationEngine(build_a15_cluster(), engine="batchpath")
        result = engine.run(mpeg4_application(num_frames=30, seed=1), OndemandGovernor())
        assert result.engine_used == "batchpath"
        reference = SimulationEngine(build_a15_cluster(), engine="tablepath").run(
            mpeg4_application(num_frames=30, seed=1), OndemandGovernor()
        )
        _assert_columns_identical(reference, result, "backend")

    def test_auto_never_selects_batchpath(self):
        """Negative priority: single-scenario auto runs keep the table engines."""
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(mpeg4_application(num_frames=10, seed=1), OndemandGovernor())
        assert result.engine_used == "tablepath"


def _grid_campaign(name="batch-grid", governor_specs=None, num_frames=60):
    from repro.campaign.spec import CampaignSpec, FactorySpec

    governor_specs = governor_specs or {
        "performance": FactorySpec.of("performance"),
        "ondemand": FactorySpec.of("ondemand"),
        "conservative": FactorySpec.of("conservative"),
        "oracle": FactorySpec.of("oracle"),
        "rl-s0": FactorySpec.of("proposed-single", seed=0),
        "rl-s1": FactorySpec.of("proposed-single", seed=1),
        "rl-s2": FactorySpec.of("proposed-single", seed=2),
    }
    return CampaignSpec.from_grid(
        name=name,
        applications=[FactorySpec.of("mpeg4", num_frames=num_frames)],
        governors=governor_specs,
        seeds=[3],
    )


class TestCampaignPlanner:
    def test_planner_groups_only_compatible_closed_loop_scenarios(self):
        from repro.campaign.executor import plan_batches

        campaign = _grid_campaign()
        units = plan_batches(list(campaign), batch_size=16)
        batched = [unit for unit in units if unit[0]]
        singles = [unit for unit in units if not unit[0]]
        assert len(batched) == 1
        grouped_labels = {scenario.label for _, scenario in batched[0][1]}
        assert grouped_labels == {
            "ondemand",
            "conservative",
            "rl-s0",
            "rl-s1",
            "rl-s2",
        }
        # Static-schedule governors stay singletons for the fastpath.
        assert {unit[1][0][1].label for unit in singles} == {
            "performance",
            "oracle",
        }

    def test_batch_size_chunks_groups(self):
        from repro.campaign.executor import plan_batches

        campaign = _grid_campaign()
        units = plan_batches(list(campaign), batch_size=2)
        batched_sizes = sorted(len(unit[1]) for unit in units if unit[0])
        assert batched_sizes == [1, 2, 2]

    def test_batch_size_zero_disables_planning(self):
        from repro.campaign.executor import plan_batches

        campaign = _grid_campaign()
        units = plan_batches(list(campaign), batch_size=0)
        assert all(not batched for batched, _ in units)
        assert len(units) == len(campaign)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_batched_campaign_matches_unbatched(self, backend):
        from repro.campaign.executor import CampaignExecutor

        campaign = _grid_campaign()
        workers = 2 if backend == "process" else None
        plain = CampaignExecutor(backend=backend, max_workers=workers).run(campaign)
        batched = CampaignExecutor(
            backend=backend, max_workers=workers, batch_size=16
        ).run(campaign)
        assert plain == batched
        engines = {o.label: o.result.engine_used for o in batched}
        assert engines["ondemand"] == "batchpath"
        assert engines["rl-s0"] == "batchpath"
        assert engines["performance"] == "fastpath"
        assert engines["oracle"] == "fastpath"

    def test_sharded_plus_merged_identical_to_unsharded_with_planner(self):
        from repro.campaign.executor import CampaignExecutor
        from repro.campaign.results import CampaignResult
        from repro.campaign.spec import CampaignSpec

        campaign = _grid_campaign()
        unsharded = CampaignExecutor(batch_size=16).run(campaign)
        stores = []
        for index in range(3):
            shard = campaign.shard(index, 3)
            stores.append(CampaignExecutor(batch_size=16).run(shard))
        merged = CampaignResult.merge(stores).ordered_for(campaign)
        assert merged == unsharded
        # Byte-level identity of the serialised stores: the engine stamp must
        # not depend on how scenarios were grouped across shards.
        assert json.dumps(merged.to_dict(), sort_keys=True) == json.dumps(
            unsharded.to_dict(), sort_keys=True
        )

    def test_failing_member_degrades_to_per_scenario_outcomes(self):
        from repro.campaign.executor import run_scenario_batch_safely
        from repro.campaign.spec import FactorySpec, ScenarioSpec

        good = ScenarioSpec(
            label="good",
            application=FactorySpec.of("mpeg4", num_frames=20),
            governor=FactorySpec.of("ondemand"),
            seed=3,
        )
        bad = ScenarioSpec(
            label="bad",
            application=FactorySpec.of("mpeg4", num_frames=20),
            governor=FactorySpec.of("userspace", index=99),
            seed=3,
        )
        outcomes = run_scenario_batch_safely([good, bad])
        assert [outcome.label for outcome in outcomes] == ["good", "bad"]
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[1].error
