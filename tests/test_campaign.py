"""Tests for the campaign subsystem: specs, executor backends, result store."""

import json

import pytest

from repro.campaign import (
    CampaignExecutor,
    CampaignResult,
    CampaignSpec,
    FactorySpec,
    ScenarioSpec,
    register_application,
    run_campaign,
    run_scenario,
)
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import SimulationConfig
from repro.sim.results import SimulationResult
from repro.workload.video import mpeg4_application

#: Small scale so the whole module stays fast.
FRAMES = 120


def acceptance_campaign(num_frames=FRAMES, seeds=(11,)):
    """Three applications x four governors — the acceptance-criterion grid."""
    return CampaignSpec.from_grid(
        "acceptance",
        applications={
            "mpeg4": FactorySpec.of("mpeg4", num_frames=num_frames),
            "h264": FactorySpec.of("h264", num_frames=num_frames),
            "fft": FactorySpec.of("fft", num_frames=num_frames),
        },
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "multicore-dvfs": FactorySpec.of("multicore-dvfs"),
            "proposed": FactorySpec.of("proposed"),
            "oracle": FactorySpec.of("oracle"),
        },
        seeds=seeds,
    )


@pytest.fixture(scope="module")
def small_campaign():
    return CampaignSpec.from_grid(
        "small",
        applications=[FactorySpec.of("mpeg4", num_frames=FRAMES)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "oracle": FactorySpec.of("oracle"),
        },
        seeds=(3, 4),
    )


@pytest.fixture(scope="module")
def small_store(small_campaign):
    return run_campaign(small_campaign)


class TestFactorySpec:
    def test_param_order_does_not_matter(self):
        first = FactorySpec.of("mpeg4", num_frames=10, seed=1)
        second = FactorySpec.of("mpeg4", seed=1, num_frames=10)
        assert first == second
        assert hash(first) == hash(second)

    def test_kwargs_round_trip(self):
        spec = FactorySpec.of("parsec", benchmark="bodytrack", num_frames=50)
        assert spec.kwargs == {"benchmark": "bodytrack", "num_frames": 50}

    def test_sequences_are_frozen_and_thawed(self):
        spec = FactorySpec.of("custom", values=[1, 2, 3])
        assert spec.params == (("values", (1, 2, 3)),)
        assert spec.kwargs == {"values": [1, 2, 3]}

    def test_rejects_non_json_params(self):
        with pytest.raises(ConfigurationError):
            FactorySpec.of("custom", bad=object())

    def test_json_round_trip(self):
        spec = FactorySpec.of("mpeg4", num_frames=10)
        assert FactorySpec.from_dict(spec.to_dict()) == spec


class TestScenarioSpec:
    def test_is_hashable(self):
        scenario = ScenarioSpec(
            label="x",
            application=FactorySpec.of("mpeg4", num_frames=10),
            governor=FactorySpec.of("ondemand"),
        )
        assert scenario in {scenario}

    def test_scenario_id_is_stable_and_content_addressed(self):
        build = lambda frames: ScenarioSpec(
            label="x",
            application=FactorySpec.of("mpeg4", num_frames=frames),
            governor=FactorySpec.of("ondemand"),
        )
        assert build(10).scenario_id == build(10).scenario_id
        assert build(10).scenario_id != build(20).scenario_id

    def test_json_round_trip_preserves_id(self):
        scenario = ScenarioSpec(
            label="x",
            application=FactorySpec.of("mpeg4", num_frames=10),
            governor=FactorySpec.of("proposed", ewma_gamma=0.4),
            config=SimulationConfig(idle_until_deadline=False),
            seed=5,
            probe=FactorySpec.of("rl-prediction", early_window=50),
        )
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert restored == scenario
        assert restored.scenario_id == scenario.scenario_id


class TestCampaignSpec:
    def test_grid_expansion_counts(self):
        campaign = acceptance_campaign(seeds=(1, 2))
        assert len(campaign) == 3 * 4 * 2

    def test_grid_labels_unique_and_ordered(self, small_campaign):
        assert small_campaign.labels == [
            "ondemand/seed=3",
            "ondemand/seed=4",
            "oracle/seed=3",
            "oracle/seed=4",
        ]

    def test_duplicate_labels_rejected(self):
        scenario = ScenarioSpec(
            label="dup",
            application=FactorySpec.of("mpeg4", num_frames=10),
            governor=FactorySpec.of("ondemand"),
        )
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="bad", scenarios=(scenario, scenario))

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="empty", scenarios=())

    def test_json_round_trip(self, small_campaign, tmp_path):
        path = tmp_path / "campaign.json"
        small_campaign.save(str(path))
        assert CampaignSpec.load(str(path)) == small_campaign


class TestRunScenario:
    def test_seed_overrides_application_seed(self):
        build = lambda seed: run_scenario(
            ScenarioSpec(
                label="x",
                application=FactorySpec.of("mpeg4", num_frames=FRAMES),
                governor=FactorySpec.of("ondemand"),
                seed=seed,
            )
        )
        first, second = build(1), build(2)
        assert first.result.records != second.result.records
        assert build(1).result.records == first.result.records

    def test_unknown_names_raise(self):
        scenario = ScenarioSpec(
            label="x",
            application=FactorySpec.of("no-such-app"),
            governor=FactorySpec.of("ondemand"),
        )
        with pytest.raises(ConfigurationError):
            run_scenario(scenario)

    def test_probe_payload_attached(self):
        outcome = run_scenario(
            ScenarioSpec(
                label="x",
                application=FactorySpec.of("mpeg4", num_frames=FRAMES),
                governor=FactorySpec.of("proposed"),
                probe=FactorySpec.of("rl-prediction", early_window=50),
            )
        )
        assert outcome.probe is not None
        assert len(outcome.probe["predicted_cycles"]) > 0
        assert outcome.probe["ewma_gamma"] == pytest.approx(0.6)


class TestBackendDeterminism:
    def test_parallel_identical_to_serial(self):
        """The acceptance grid (12 scenarios) is bit-identical on both backends."""
        campaign = acceptance_campaign()
        assert len(campaign) >= 12
        serial = run_campaign(campaign, backend="serial")
        parallel = run_campaign(campaign, backend="process", max_workers=4)
        assert serial.to_json() == parallel.to_json()
        assert list(parallel.results()) == campaign.labels

    def test_rerun_is_deterministic(self, small_campaign, small_store):
        again = run_campaign(small_campaign)
        assert again.to_json() == small_store.to_json()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignExecutor(backend="threads")


class TestCampaignResult:
    def test_results_mapping_in_campaign_order(self, small_campaign, small_store):
        assert list(small_store.results()) == small_campaign.labels
        for result in small_store.results().values():
            assert isinstance(result, SimulationResult)
            assert result.num_frames == FRAMES

    def test_select_by_grid_coordinates(self, small_store):
        ondemand = small_store.select(governor_key="ondemand")
        assert len(ondemand) == 2
        assert {o.scenario.seed for o in ondemand} == {3, 4}
        assert small_store.select(governor_key="ondemand", seed=3)[0].label == "ondemand/seed=3"

    def test_json_round_trip_preserves_everything(self, small_store, tmp_path):
        path = tmp_path / "results.json"
        small_store.save(str(path))
        restored = CampaignResult.load(str(path))
        assert restored.to_json() == small_store.to_json()
        original = next(iter(small_store)).result
        loaded = next(iter(restored)).result
        assert loaded.records == original.records
        assert loaded.total_energy_j == original.total_energy_j

    def test_ordered_for_missing_scenario_raises(self, small_campaign):
        with pytest.raises(SimulationError):
            CampaignResult(campaign_name="small").ordered_for(small_campaign)


class TestResume:
    def test_resume_skips_completed_scenarios(self, small_campaign, small_store):
        executed = []

        def progress(label, done, total):
            executed.append(label)

        partial = CampaignResult.from_json(small_store.to_json())
        dropped = small_campaign.scenarios[1].scenario_id
        del partial.outcomes[dropped]

        executor = CampaignExecutor(backend="serial")
        resumed = executor.run(small_campaign, resume=partial, progress=progress)
        # Only the dropped scenario re-ran, and the final store is complete
        # and identical to the from-scratch run.
        assert executed == [small_campaign.scenarios[1].label]
        assert resumed.to_json() == small_store.to_json()

    def test_resume_from_disk(self, small_campaign, small_store, tmp_path):
        path = tmp_path / "partial.json"
        small_store.save(str(path))
        resumed = run_campaign(small_campaign, resume=CampaignResult.load(str(path)))
        assert resumed.to_json() == small_store.to_json()

    def test_resume_with_full_store_runs_nothing(self, small_campaign, small_store):
        executed = []
        CampaignExecutor().run(
            small_campaign,
            resume=small_store,
            progress=lambda label, done, total: executed.append(label),
        )
        assert executed == []


class TestRegistryExtension:
    def test_custom_application_factory(self):
        @register_application("test-custom-app")
        def custom(num_frames=30, seed=0):
            return mpeg4_application(num_frames=num_frames, seed=seed)

        outcome = run_scenario(
            ScenarioSpec(
                label="custom",
                application=FactorySpec.of("test-custom-app", num_frames=40),
                governor=FactorySpec.of("ondemand"),
            )
        )
        assert outcome.result.num_frames == 40


class TestExperimentDriversOnCampaigns:
    def test_table1_campaign_shape(self):
        from repro.experiments import ExperimentSettings, build_table1_campaign

        campaign = build_table1_campaign(ExperimentSettings(num_frames=100))
        assert set(campaign.labels) == {"ondemand", "multicore_dvfs", "proposed", "oracle"}

    def test_table2_campaign_shape(self):
        from repro.experiments import ExperimentSettings, build_table2_campaign

        campaign = build_table2_campaign(ExperimentSettings(num_frames=300, num_seeds=2))
        assert len(campaign) == 3 * 2 * 2

    def test_figure3_campaign_has_probe(self):
        from repro.experiments import ExperimentSettings, build_figure3_campaign

        campaign = build_figure3_campaign(ExperimentSettings(num_frames=300))
        assert campaign.scenarios[0].probe.name == "rl-prediction"
