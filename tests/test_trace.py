"""Unit tests for frame-trace serialisation and statistics."""

import pytest

from repro.errors import WorkloadError
from repro.workload.fft import fft_application
from repro.workload.trace import FrameTrace
from repro.workload.video import mpeg4_application


@pytest.fixture
def trace() -> FrameTrace:
    return FrameTrace.from_application(mpeg4_application(num_frames=40, seed=2))


class TestFrameTrace:
    def test_round_trip_to_application(self, trace):
        rebuilt = trace.to_application()
        assert rebuilt.num_frames == 40
        assert rebuilt.reference_time_s == pytest.approx(trace.reference_time_s)
        assert [f.total_cycles for f in rebuilt] == [f.total_cycles for f in trace.frames]

    def test_summary_statistics(self, trace):
        summary = trace.summary()
        assert summary.num_frames == 40
        assert summary.num_threads == 4
        assert summary.min_total_cycles <= summary.mean_total_cycles <= summary.max_total_cycles
        assert summary.coefficient_of_variation >= 0.0

    def test_csv_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = FrameTrace.from_csv(
            path,
            application_name=trace.application_name,
            frames_per_second=trace.frames_per_second,
            reference_time_s=trace.reference_time_s,
        )
        assert len(loaded) == len(trace)
        original = [f.thread_cycles for f in trace.frames]
        restored = [f.thread_cycles for f in loaded.frames]
        for a, b in zip(original, restored):
            assert a == pytest.approx(b)
        assert [f.kind for f in loaded.frames] == [f.kind for f in trace.frames]

    def test_json_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        trace.to_json(path)
        loaded = FrameTrace.from_json(path)
        assert loaded.application_name == trace.application_name
        assert loaded.frames_per_second == pytest.approx(trace.frames_per_second)
        assert [f.total_cycles for f in loaded.frames] == pytest.approx(
            [f.total_cycles for f in trace.frames]
        )

    def test_json_missing_field_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"application_name": "x", "frames": []}')
        with pytest.raises((WorkloadError, KeyError)):
            FrameTrace.from_json(path)

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(WorkloadError):
            FrameTrace.from_csv(path, "x", 25.0, 0.04)

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            FrameTrace("empty", [], 25.0, 0.04)

    def test_fft_trace_summary_matches_generator_statistics(self):
        application = fft_application(num_frames=200, seed=1)
        summary = FrameTrace.from_application(application).summary()
        assert summary.mean_total_cycles == pytest.approx(application.mean_frame_cycles)
        assert summary.coefficient_of_variation == pytest.approx(
            application.workload_variability(), rel=1e-6
        )
