"""Integration tests: full closed-loop runs across modules.

These tests exercise the complete stack (workload model → simulation engine →
governor → platform → metrics) on short runs and check the system-level
behaviours the paper relies on.
"""

import pytest

from repro.governors import (
    MultiCoreDVFSGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    ShenRLGovernor,
)
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm import MultiCoreRLGovernor, RLGovernor, RLGovernorConfig
from repro.sim import ExperimentRunner, SimulationEngine
from repro.workload import FrameTrace
from repro.workload.fft import fft_application
from repro.workload.parsec import parsec_application
from repro.workload.video import h264_football_application


@pytest.fixture(scope="module")
def football_runs():
    """One shared comparison run used by several assertions (kept short)."""
    application = h264_football_application(num_frames=700, seed=23)
    runner = ExperimentRunner()
    results = runner.run_with_oracle(
        application,
        {
            "ondemand": OndemandGovernor,
            "performance": PerformanceGovernor,
            "proposed": MultiCoreRLGovernor,
            "multicore_dvfs": MultiCoreDVFSGovernor,
        },
    )
    return results


class TestGovernorEnergyOrdering:
    def test_oracle_is_the_energy_lower_bound(self, football_runs):
        oracle = football_runs["oracle"]
        for name, result in football_runs.items():
            if name == "oracle":
                continue
            assert result.total_energy_j > oracle.total_energy_j

    def test_performance_governor_is_the_most_expensive(self, football_runs):
        performance = football_runs["performance"]
        for name, result in football_runs.items():
            if name == "performance":
                continue
            assert result.total_energy_j < performance.total_energy_j

    def test_proposed_saves_energy_versus_ondemand(self, football_runs):
        assert (
            football_runs["proposed"].total_energy_j
            < football_runs["ondemand"].total_energy_j
        )

    def test_oracle_meets_every_deadline(self, football_runs):
        assert football_runs["oracle"].deadline_miss_ratio == 0.0

    def test_proposed_performance_is_closest_to_requirement(self, football_runs):
        proposed_gap = abs(1.0 - football_runs["proposed"].normalized_performance)
        ondemand_gap = abs(1.0 - football_runs["ondemand"].normalized_performance)
        performance_gap = abs(1.0 - football_runs["performance"].normalized_performance)
        assert proposed_gap < ondemand_gap
        assert proposed_gap < performance_gap

    def test_learning_governor_converges_and_stops_exploring(self, football_runs):
        proposed = football_runs["proposed"]
        assert 0 < proposed.exploration_count < proposed.num_frames / 2
        late_window = proposed.window(proposed.num_frames - 200)
        assert sum(1 for r in late_window.records if r.explored) == 0

    def test_learning_phase_runs_hotter_than_steady_state(self, football_runs):
        """Exploration costs energy: the early window burns more power than steady state."""
        proposed = football_runs["proposed"]
        boundary = max(proposed.exploration_count, 50)
        early = proposed.window(0, boundary)
        late = proposed.window(proposed.num_frames - 2 * boundary)
        assert early.average_power_w > late.average_power_w * 0.95


class TestPowersaveBehaviour:
    def test_powersave_underperforms_on_heavy_workloads(self):
        application = h264_football_application(num_frames=100, seed=3)
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(application, PowersaveGovernor())
        assert result.normalized_performance > 1.5
        assert result.deadline_miss_ratio > 0.9


class TestDifferentWorkloadClasses:
    @pytest.mark.parametrize(
        "application_builder",
        [
            lambda: fft_application(num_frames=250, seed=2),
            lambda: parsec_application("blackscholes", num_frames=250, seed=2),
            lambda: parsec_application("bodytrack", num_frames=250, seed=2),
        ],
    )
    def test_rl_governor_handles_workload(self, application_builder):
        application = application_builder()
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(application, MultiCoreRLGovernor())
        # The governor must be sane on every workload class: mostly meeting
        # deadlines without pinning the cluster at either extreme.
        assert result.deadline_miss_ratio < 0.5
        mean_index = sum(r.operating_index for r in result.records) / result.num_frames
        assert 0.5 < mean_index < 18.0

    def test_shen_baseline_runs_on_fft(self):
        application = fft_application(num_frames=250, seed=4)
        engine = SimulationEngine(build_a15_cluster())
        result = engine.run(application, ShenRLGovernor())
        assert result.exploration_count > 0
        assert result.deadline_miss_ratio < 0.5


class TestTraceReplayIntegration:
    def test_trace_round_trip_yields_identical_simulation(self, tmp_path):
        application = fft_application(num_frames=120, seed=8)
        path = tmp_path / "fft.json"
        FrameTrace.from_application(application).to_json(path)
        replayed = FrameTrace.from_json(path).to_application()

        engine = SimulationEngine(build_a15_cluster())
        original = engine.run(application, OndemandGovernor())
        repeated = engine.run(replayed, OndemandGovernor())
        assert repeated.total_energy_j == pytest.approx(original.total_energy_j)
        assert repeated.frame_times_s == pytest.approx(original.frame_times_s)


class TestSeedReproducibility:
    def test_same_seed_same_results(self):
        application = h264_football_application(num_frames=200, seed=6)
        runner = ExperimentRunner()
        first = runner.run_one(application, lambda: MultiCoreRLGovernor(RLGovernorConfig(seed=1)))
        second = runner.run_one(application, lambda: MultiCoreRLGovernor(RLGovernorConfig(seed=1)))
        assert first.total_energy_j == pytest.approx(second.total_energy_j)
        assert first.exploration_count == second.exploration_count

    def test_different_agent_seeds_explore_differently(self):
        application = h264_football_application(num_frames=200, seed=6)
        runner = ExperimentRunner()
        first = runner.run_one(application, lambda: MultiCoreRLGovernor(RLGovernorConfig(seed=1)))
        second = runner.run_one(application, lambda: MultiCoreRLGovernor(RLGovernorConfig(seed=2)))
        first_actions = [r.operating_index for r in first.records[:100]]
        second_actions = [r.operating_index for r in second.records[:100]]
        assert first_actions != second_actions


class TestSingleVsMultiCoreFormulation:
    def test_both_formulations_learn_sane_policies(self):
        application = h264_football_application(num_frames=400, seed=17)
        runner = ExperimentRunner()
        single = runner.run_one(application, RLGovernor)
        multi = runner.run_one(application, MultiCoreRLGovernor)
        for result in (single, multi):
            assert result.deadline_miss_ratio < 0.5
            assert result.normalized_performance < 1.2
        # Energy of the two formulations is in the same ballpark.
        assert abs(single.total_energy_j - multi.total_energy_j) < 0.3 * single.total_energy_j
