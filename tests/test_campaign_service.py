"""Tests for the distributed campaign service.

Covers the PR-7 tentpole surface: the lease/heartbeat/submit protocol of
:class:`~repro.campaign.service.Coordinator` (expiry + requeue with
bounded delivery retries, first-wins idempotent submits, journalled
crash-resume with quarantine of corrupt journals), the JSON-over-HTTP
transport, worker-site degradation (reconnect backoff + local fallback
checkpoint), the bit-identity of :func:`run_campaign_service` against a
serial run, and the ``serve`` / ``work`` CLI subcommands end to end.
"""

import socket
import threading
import time

import pytest

from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    Coordinator,
    CoordinatorServer,
    FactorySpec,
    HTTPClient,
    LocalClient,
    RetryPolicy,
    ScenarioOutcome,
    WorkerSite,
    run_campaign,
    run_campaign_service,
)
from repro.campaign.cli import main as cli_main
from repro.campaign.service import (
    STATE_DRAINED,
    STATE_GRANTED,
    STATE_WAIT,
    dispatch_op,
)
from repro.errors import ConfigurationError, ServiceError

#: Small scale so the whole module stays fast.
FRAMES = 60


def small_campaign(name="service", seeds=(1, 2)):
    return CampaignSpec.from_grid(
        name,
        applications=[FactorySpec.of("mpeg4", num_frames=FRAMES)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "oracle": FactorySpec.of("oracle"),
        },
        seeds=seeds,
    )


@pytest.fixture(scope="module")
def campaign():
    return small_campaign()


@pytest.fixture(scope="module")
def serial_store(campaign):
    return run_campaign(campaign)


class FakeClock:
    """Manually advanced clock so lease expiry is deterministic in tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_coordinator(campaign, **kwargs):
    kwargs.setdefault("lease_timeout_s", 10.0)
    clock = kwargs.pop("clock", None) or FakeClock()
    return Coordinator(campaign, clock=clock, **kwargs), clock


class TestCoordinatorProtocol:
    def test_lease_grants_distinct_scenarios(self, campaign):
        coordinator, _ = make_coordinator(campaign)
        first = coordinator.lease("w0", count=2)
        second = coordinator.lease("w1", count=2)
        assert first["state"] == second["state"] == STATE_GRANTED
        assert first["campaign"] == campaign.name
        granted = first["leases"] + second["leases"]
        labels = {lease["scenario"]["label"] for lease in granted}
        assert labels == set(campaign.labels)
        # Everything is leased out: a third worker has to wait.
        assert coordinator.lease("w2")["state"] == STATE_WAIT

    def test_heartbeat_keeps_lease_alive(self, campaign):
        coordinator, clock = make_coordinator(campaign)
        lease = coordinator.lease("w0")["leases"][0]
        clock.now = 8.0
        coordinator.heartbeat("w0", [lease["lease_id"]])
        clock.now = 15.0  # past the original deadline, inside the extended one
        coordinator.tick()
        assert coordinator.stats["requeued"] == 0

    def test_expired_lease_requeues_with_backoff(self, campaign):
        # One scenario only, so a lease during its backoff window must wait.
        campaign = CampaignSpec(name=campaign.name, scenarios=campaign.scenarios[:1])
        coordinator, clock = make_coordinator(
            campaign, retry=RetryPolicy(max_attempts=3, backoff_s=2.0)
        )
        lease = coordinator.lease("w0")["leases"][0]
        clock.now = 11.0
        coordinator.tick()
        assert coordinator.stats["requeued"] == 1
        # The scenario is backoff-delayed: an immediate lease must wait...
        waiting = coordinator.lease("w1")
        assert waiting["state"] == STATE_WAIT
        # ...until the coordinator's next self-inflicted deadline passes.
        clock.now = coordinator.next_deadline() + 0.01
        regranted = coordinator.lease("w1")
        assert regranted["state"] == STATE_GRANTED
        assert (
            regranted["leases"][0]["scenario"]["label"]
            == lease["scenario"]["label"]
        )

    def test_exhausted_deliveries_fail_terminally(self, campaign):
        solo = CampaignSpec(name=campaign.name, scenarios=campaign.scenarios[:1])
        coordinator, clock = make_coordinator(
            solo, retry=RetryPolicy(max_attempts=1, backoff_s=0.0)
        )
        coordinator.lease("w0")
        clock.now = 11.0
        coordinator.tick()
        assert coordinator.stats["expired_failed"] == 1
        assert coordinator.finished
        outcome = next(iter(coordinator.result()))
        assert not outcome.ok
        assert "lease expired" in outcome.error

    def test_submit_is_first_wins(self, campaign, serial_store):
        coordinator, _ = make_coordinator(campaign)
        lease = coordinator.lease("w0")["leases"][0]
        sid = None
        for outcome in serial_store:
            if outcome.label == lease["scenario"]["label"]:
                sid = outcome
        first = coordinator.submit("w0", lease["lease_id"], sid.to_dict())
        assert first["ok"] and first["accepted"] and not first["duplicate"]
        again = coordinator.submit("w1", None, sid.to_dict())
        assert again["ok"] and again["duplicate"] and not again["accepted"]
        assert coordinator.stats["duplicates"] == 1

    def test_submit_unknown_scenario_rejected(self, campaign, serial_store):
        other = small_campaign(name="other", seeds=(9,))
        coordinator, _ = make_coordinator(other)
        stray = next(iter(serial_store)).to_dict()
        response = coordinator.submit("w0", None, stray)
        assert not response["ok"]
        assert "unknown scenario" in response["error"]

    def test_all_submits_drain_to_serial_bytes(self, campaign, serial_store):
        coordinator, _ = make_coordinator(campaign)
        for outcome in serial_store:
            coordinator.submit("w0", None, outcome.to_dict())
        assert coordinator.finished
        assert coordinator.lease("w0")["state"] == STATE_DRAINED
        assert coordinator.result().to_json() == serial_store.to_json()

    def test_result_before_drain_raises(self, campaign):
        coordinator, _ = make_coordinator(campaign)
        with pytest.raises(ServiceError, match="without a final outcome"):
            coordinator.result()

    def test_status_counts(self, campaign, serial_store):
        coordinator, _ = make_coordinator(campaign)
        coordinator.submit("w0", None, next(iter(serial_store)).to_dict())
        status = coordinator.status(include_summary=True)
        assert status["total"] == len(campaign)
        assert status["done"] == 1
        assert not status["drained"]
        assert "w0" in status["workers"]
        assert campaign.labels[0] in status["summary"]

    def test_dispatch_routes_and_reports_errors(self, campaign):
        coordinator, _ = make_coordinator(campaign)
        assert dispatch_op(coordinator, {"op": "status"})["ok"]
        assert not dispatch_op(coordinator, {"op": "nope"})["ok"]
        bad = dispatch_op(coordinator, {"op": "lease", "count": 0})
        assert not bad["ok"] and "ConfigurationError" in bad["error"]

    def test_lease_timeout_validated(self, campaign):
        with pytest.raises(ConfigurationError):
            Coordinator(campaign, lease_timeout_s=0.0)


class TestCoordinatorJournal:
    def test_restart_resumes_from_journal(self, campaign, serial_store, tmp_path):
        journal = str(tmp_path / "journal.json")
        coordinator, _ = make_coordinator(campaign, journal_path=journal)
        for outcome in list(serial_store)[:2]:
            coordinator.submit("w0", None, outcome.to_dict())
        # A brand-new coordinator (same journal) carries the work over.
        revived, _ = make_coordinator(campaign, journal_path=journal)
        assert revived.stats["resumed"] == 2
        assert len(revived.store) == 2
        grant = revived.lease("w0", count=len(campaign))
        assert len(grant["leases"]) == len(campaign) - 2

    def test_corrupt_journal_quarantined(self, campaign, tmp_path):
        journal = tmp_path / "journal.json"
        journal.write_text("{truncated by a crash", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            coordinator, _ = make_coordinator(campaign, journal_path=str(journal))
        assert len(coordinator.store) == 0
        assert not journal.exists()
        assert (tmp_path / "journal.json.corrupt").exists()

    def test_resumed_failure_with_budget_is_rerun(self, campaign):
        seed = CampaignResult(campaign_name=campaign.name)
        seed.add(
            ScenarioOutcome.failure(
                campaign.scenarios[0], error="Killed", traceback_text=""
            )
        )
        coordinator, _ = make_coordinator(
            campaign, resume=seed, retry=RetryPolicy(max_attempts=2)
        )
        grant = coordinator.lease("w0", count=len(campaign))
        granted = {lease["scenario"]["label"] for lease in grant["leases"]}
        assert campaign.scenarios[0].label in granted


class TestInProcessService:
    def test_service_run_is_bit_identical_to_serial(self, campaign, serial_store):
        events = []
        store = run_campaign_service(campaign, num_workers=3, progress=events.append)
        assert store.to_json() == serial_store.to_json()
        # Live streaming observed every completion, in order.
        assert [event.kind for event in events] == ["done"] * len(campaign)
        assert events[-1].done == events[-1].total == len(campaign)

    def test_worker_count_validated(self, campaign):
        with pytest.raises(ConfigurationError):
            run_campaign_service(campaign, num_workers=0)


class _SubmitLostClient:
    """Delegates to a real client but loses the coordinator at submit time."""

    def __init__(self, inner):
        self.inner = inner

    def call(self, request):
        if request.get("op") == "submit":
            raise ConnectionRefusedError("coordinator gone")
        return self.inner.call(request)


class TestWorkerDegradation:
    def test_unreachable_submit_strands_to_fallback(self, campaign, tmp_path):
        solo = CampaignSpec(name=campaign.name, scenarios=campaign.scenarios[:1])
        coordinator, _ = make_coordinator(solo)
        fallback = str(tmp_path / "stranded.json")
        site = WorkerSite(
            _SubmitLostClient(LocalClient(coordinator)),
            worker_id="doomed",
            reconnect=RetryPolicy(max_attempts=2, backoff_s=0.0),
            fallback_path=fallback,
            poll_interval_s=0.01,
            heartbeat_interval_s=None,
        )
        stats = site.run()
        assert stats.completed == 0
        assert stats.stranded == 1
        stranded = CampaignResult.load(fallback)
        assert stranded.campaign_name == solo.name
        assert [outcome.label for outcome in stranded] == [solo.scenarios[0].label]

    def test_stranded_results_merge_back(self, campaign, serial_store, tmp_path):
        solo = CampaignSpec(name=campaign.name, scenarios=campaign.scenarios[:1])
        coordinator, _ = make_coordinator(solo)
        fallback = str(tmp_path / "stranded.json")
        WorkerSite(
            _SubmitLostClient(LocalClient(coordinator)),
            reconnect=RetryPolicy(max_attempts=1),
            fallback_path=fallback,
            heartbeat_interval_s=None,
        ).run()
        merged = CampaignResult.merge([CampaignResult.load(fallback)])
        assert merged.ordered_for(solo).to_json() == CampaignResult(
            campaign_name=solo.name,
            outcomes={
                s.scenario_id: serial_store.outcomes[s.scenario_id]
                for s in solo.scenarios
            },
        ).to_json()

    def test_never_reachable_coordinator_exits_cleanly(self, tmp_path):
        class DeadClient:
            def call(self, request):
                raise ConnectionRefusedError("nothing listening")

        site = WorkerSite(
            DeadClient(),
            reconnect=RetryPolicy(max_attempts=2, backoff_s=0.0),
            heartbeat_interval_s=None,
        )
        stats = site.run()
        assert stats.completed == 0 and not stats.drained


class TestHTTPTransport:
    def test_http_worker_sites_match_serial(self, campaign, serial_store):
        coordinator, _ = make_coordinator(campaign, clock=time.monotonic)
        server = CoordinatorServer(coordinator)
        server.start()
        try:
            status = HTTPClient(server.address).call({"op": "status"})
            assert status["ok"] and status["total"] == len(campaign)
            sites = [
                WorkerSite(
                    HTTPClient(server.address),
                    worker_id=f"http-{index}",
                    poll_interval_s=0.05,
                )
                for index in range(2)
            ]
            results = {}
            threads = [
                threading.Thread(
                    target=lambda s=site: results.setdefault(s.worker_id, s.run()),
                    daemon=True,
                )
                for site in sites
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert all(stats.drained for stats in results.values())
            assert coordinator.result().to_json() == serial_store.to_json()
        finally:
            server.stop()

    def test_malformed_request_is_a_400(self, campaign):
        from urllib import error, request

        coordinator, _ = make_coordinator(campaign)
        server = CoordinatorServer(coordinator)
        server.start()
        try:
            with pytest.raises(error.HTTPError) as info:
                request.urlopen(
                    request.Request(
                        f"{server.address}/rpc", data=b"not json", method="POST"
                    ),
                    timeout=5.0,
                )
            assert info.value.code == 400
        finally:
            server.stop()


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestServeWorkCli:
    def test_serve_and_work_roundtrip(self, campaign, serial_store, tmp_path):
        spec_path = str(tmp_path / "spec.json")
        campaign.save(spec_path)
        output = str(tmp_path / "service-results.json")
        port = _free_port()
        serve_rc = {}

        def serve():
            serve_rc["rc"] = cli_main(
                [
                    "serve",
                    spec_path,
                    "--port",
                    str(port),
                    "--output",
                    output,
                    "--quiet",
                ]
            )

        server_thread = threading.Thread(target=serve, daemon=True)
        server_thread.start()
        url = f"http://127.0.0.1:{port}"
        client = HTTPClient(url, timeout_s=5.0)
        deadline = time.monotonic() + 15.0
        while True:
            try:
                client.call({"op": "status"})
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        assert cli_main(
            ["work", "--coordinator", url, "--quiet", "--poll", "0.05"]
        ) == 0
        server_thread.join(timeout=60.0)
        assert not server_thread.is_alive()
        assert serve_rc["rc"] == 0
        assert CampaignResult.load(output).to_json() == serial_store.to_json()

    def test_work_against_nothing_fails(self, tmp_path):
        port = _free_port()  # nothing is listening on it
        rc = cli_main(
            ["work", "--coordinator", f"http://127.0.0.1:{port}", "--quiet"]
        )
        assert rc == 1

    def test_serve_rejects_bad_spec(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.json")
        assert cli_main(["serve", missing, "--quiet"]) == 2
        assert "serve" in capsys.readouterr().err
