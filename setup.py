"""Package metadata and console entry points.

Install in editable mode with ``pip install -e .`` (or, in environments
without the ``wheel`` package where PEP 660 editable installs are
unavailable, ``pip install -e . --no-use-pep517 --no-build-isolation``).

The ``repro-campaign`` console script runs a campaign spec from JSON on
either execution backend — see :mod:`repro.campaign.cli`.  The
``repro-parity`` console script is the governor/engine parity gate —
see :mod:`repro.testing.parity.cli`.
"""

from setuptools import find_packages, setup

setup(
    name="repro-biswas-date17",
    version="0.1.0",
    description=(
        "Reproduction of Biswas et al., 'Machine Learning for Run-Time Energy "
        "Optimisation in Many-Core Systems' (DATE 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={
        # Optional compiled closed-loop kernels (repro.sim.jitpath).  Without
        # numba the backend simply drops out of engine negotiation.
        "jit": ["numba>=0.59"],
        # Optional columnar result store (repro.campaign.store).  Without
        # pyarrow the store negotiates down to its pure-JSON encodings.
        "arrow": ["pyarrow>=14"],
    },
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.campaign.cli:main",
            "repro-parity=repro.testing.parity.cli:main",
        ]
    },
)
