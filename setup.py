"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
environments without the ``wheel`` package (where PEP 660 editable installs
are unavailable) can still do a legacy editable install via
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
